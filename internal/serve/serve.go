// Package serve is an online, contention-aware inference-serving runtime
// layered on the HaX-CoNN engine: named tenants submit inference requests
// for zoo networks with Poisson or periodic arrivals and per-tenant SLOs;
// an admission controller and dispatcher map admitted requests onto the
// SoC's accelerators using contention-aware schedules and execute them on
// the ground-truth simulator in virtual time.
//
// The dispatcher works in rounds: at each round a pluggable mix-forming
// policy (MixFormer) selects which eligible pending requests run
// concurrently — the active workload mix, the multiset of co-running
// networks — and asks the schedule cache for that mix's schedule. The
// default "fifo" policy takes the oldest requests (up to MaxBatch);
// "demand-balance" pairs memory-light with memory-heavy networks using
// the profiler's demand estimates; "slo-aware" dispatches by deadline
// urgency; "contention-aware" scores a bounded beam of candidate batches
// with the analytic contention model and dispatches the best-predicted
// one. Repeated mixes reuse solved schedules; unseen mixes are
// served immediately on the best naive schedule while the anytime solver's
// incumbent stream upgrades the cache entry in the (virtual) background,
// exactly the D-HaX-CoNN operating regime of Sec. 3.5 applied to
// multi-tenant traffic instead of a single camera loop.
//
// Two policies make the contention-aware win measurable under load:
//
//   - ContentionAware: HaX-CoNN schedules from the cache, upgraded online.
//   - NaiveGPUOnly: the single-accelerator greedy baseline — every network
//     on the fastest accelerator, co-runners serializing behind each other.
//
// Compare serves the same trace under both and reports per-tenant
// p50/p95/p99 latency, SLO violations, throughput and cache hit rate.
//
// A Runtime is steppable: Offer hands it one arriving request (running the
// admission controller), NextStartMs reports when its next dispatch round
// can begin, and Step executes exactly one round on the simulator. Serve is
// the single-device driver over those primitives; internal/fleet drives
// many runtimes through the same Device interface, interleaving their
// rounds in a shared virtual timeline.
package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"haxconn/internal/core"
	"haxconn/internal/nn"
	"haxconn/internal/obs"
	"haxconn/internal/schedule"
	"haxconn/internal/soc"
)

// Policy selects how dispatched mixes are scheduled.
type Policy int

// Policies.
const (
	// ContentionAware serves each mix with the HaX-CoNN schedule from the
	// cache, upgraded as the background anytime solver improves it.
	ContentionAware Policy = iota
	// NaiveGPUOnly serves every mix with the single-accelerator greedy
	// baseline: all layers of all networks on the fastest accelerator.
	NaiveGPUOnly
)

// String returns the policy name.
func (p Policy) String() string {
	if p == NaiveGPUOnly {
		return "naive-gpu-only"
	}
	return "contention-aware"
}

// Request is one inference request in a trace.
type Request struct {
	// ID is the position of the request in the trace (assigned by the
	// load generator; informational).
	ID int
	// Tenant names the submitting client.
	Tenant string
	// Network is the zoo network to run.
	Network string
	// ArrivalMs is the virtual arrival time.
	ArrivalMs float64
	// SLOMs is the per-request latency objective; a completed request
	// whose arrival-to-completion latency exceeds it counts as an SLO
	// violation. Zero disables SLO accounting for the request.
	SLOMs float64
}

// Trace is a request sequence, ordered by arrival time.
type Trace []Request

// Config controls a serving runtime.
type Config struct {
	// Platform is the target SoC (required).
	Platform *soc.Platform
	// Name labels the runtime in fleet summaries (default: the platform
	// name). Fleets give each device a unique name ("Orin/0", "Orin/1").
	Name string
	// Objective is the per-mix scheduling objective (default MinMaxLatency).
	Objective schedule.Objective
	// Policy selects contention-aware or naive scheduling.
	Policy Policy
	// MaxBatch caps the number of requests dispatched concurrently in one
	// round (the size of the workload mix). Default: the number of
	// DNN-capable accelerators on the platform.
	MaxBatch int
	// MixPolicy names the mix-forming policy that selects which pending
	// requests form each dispatch round: "fifo" (the default — the oldest
	// eligible requests, the dispatcher's historical behavior),
	// "demand-balance", "slo-aware" or "contention-aware". See
	// MixPolicies.
	MixPolicy string
	// Mix, when set, overrides MixPolicy with a custom policy instance.
	Mix MixFormer
	// ScoreBeam bounds how many candidate batches the contention-aware
	// mix policy scores per dispatch round (0 = DefaultScoreBeam). A wider
	// beam explores more pairings per round at higher dispatch cost;
	// ignored by every other policy.
	ScoreBeam int
	// MaxWaitRounds bounds starvation under non-FIFO mix policies: when
	// the oldest eligible request has been passed over for this many
	// consecutive rounds it is forced into the next batch ahead of the
	// policy's ranking — one forced slot per round, so every queued
	// request makes progress once it reaches the queue head. Zero means
	// DefaultMaxWaitRounds. FIFO never triggers it (the prefix always
	// contains the oldest request).
	MaxWaitRounds int
	// MaxQueue caps a tenant's pending (admitted, undispatched) requests;
	// arrivals beyond it are rejected. Zero means unlimited.
	MaxQueue int
	// AdmitSLOFactor enables SLO-based load shedding: a request whose
	// estimated completion latency (queueing backlog plus standalone
	// service estimate) exceeds AdmitSLOFactor x SLO is rejected at
	// arrival. Zero admits regardless of SLO.
	AdmitSLOFactor float64
	// SolverTimeScale stretches the background solver's virtual solve time
	// when mapping its incumbent stream onto the serving timeline, so
	// upgrade dynamics at Z3-like solve times can be studied (see
	// autoloop.Config.SolverTimeScale). 1 means unscaled.
	SolverTimeScale float64
	// MaxGroups caps layer groups per network (0 = nn.DefaultMaxGroups).
	MaxGroups int
	// Portfolio solves schedule-cache misses and scoring probes on the
	// parallel solver portfolio — B&B, SAT enumeration and local search
	// racing across goroutines with a shared incumbent bound — instead of
	// single-engine branch & bound. The merged incumbent stream replays on
	// the same deterministic node clock, so summaries stay byte-identical
	// run to run; only solve wall-clock changes.
	Portfolio bool
	// SharedCache, when set, is used instead of a private schedule cache:
	// a fleet shares one cache among all devices of the same platform, so
	// a mix solved on one Orin warms every Orin. Its platform, objective
	// and solve mode must match this runtime's configuration.
	SharedCache *Cache
	// AdaptiveMaxWait scales the starvation bound by the oldest eligible
	// request's SLO slack: a request close to its deadline is forced into
	// a batch after fewer passed-over rounds (down to one), while a
	// slack-rich request waits the full MaxWaitRounds. Requests without
	// SLOs always see the full bound.
	AdaptiveMaxWait bool
	// Tracer, when set, records request-lifecycle and dispatch events on
	// the virtual timeline (see internal/obs). Tracing is strictly
	// observational: a traced run produces byte-identical summaries to an
	// untraced one. The tracer is shared by reference and survives Reset,
	// so comparison drivers accumulate all legs into one trace.
	Tracer *obs.Tracer
	// SketchMetrics summarizes latencies with a streaming quantile sketch
	// (O(1) memory per tenant) instead of storing and sorting every
	// sample. Percentiles carry the sketch's documented relative-error
	// bound (obs.DefaultSketchAccuracy); counts, means and maxima stay
	// exact. Off by default: the exact path remains the byte-identical
	// reference.
	SketchMetrics bool
	// Metrics, when set, receives the runtime's counters (rounds, cache
	// effectiveness, prepare calls, queue watermarks) at the end of Serve
	// via FillMetrics. Like Tracer, it is observational only.
	Metrics *obs.Registry
	// Audit, when set, receives the forensics stream: at every dispatch
	// round the deployed schedule is re-evaluated under the analytic
	// contention model (the prediction the solver optimized with) and
	// compared against the ground-truth execution — round makespan pairs
	// per mix, end-to-end latency pairs per tenant and per network. With a
	// Tracer attached the same pairs also land as per-round and
	// per-request "audit" trace events (what cmd/obsreport classifies
	// violations with). Strictly observational: summaries are
	// byte-identical with an audit attached or not.
	Audit *obs.Audit
}

// Runtime is the serving executor: admission controller, dispatcher and
// schedule cache bound to one platform and policy. Its zero state is the
// start of a fresh virtual timeline; Offer/Step advance it one event at a
// time, and Serve drives a whole trace.
type Runtime struct {
	cfg        Config
	cache      *Cache
	former     MixFormer
	standalone map[string]float64 // per-network standalone service estimate
	demand     map[string]float64 // per-network standalone memory-demand estimate
	prepErr    map[string]error   // per-network characterization failure (negative cache)
	prepares   int                // core.Prepare calls issued by the estimators

	// Virtual-timeline state, advanced by Offer and Step.
	clockMs     float64 // end of the last dispatched round
	busyMs      float64 // total round time (clock advance while dispatching)
	pending     []Request
	waited      []int // rounds pending[i] was eligible but passed over
	queued      map[string]int
	completions []Completion
	rounds      int

	// Cache effectiveness local to this runtime: with a shared cache the
	// cache's own counters aggregate over all devices in the group.
	hits, misses, upgrades int
	lastSched              map[string]*schedule.Schedule // last deployed schedule per mix key

	// Observability state (see Config.Tracer/SketchMetrics/Metrics).
	acc       *streamStats // streaming metric accumulator (sketch mode)
	peakQueue int          // high watermark of the pending queue
	forced    int          // starvation-bound forced dispatches

	// Per-round scratch buffers reused across Step calls. Step runs on one
	// goroutine and nothing retains these slices past the round (cache keys
	// and entries copy what they keep), so pooling them removes the
	// dispatcher's three steady-state allocations per round.
	candScratch  []Candidate
	mixScratch   []string
	batchScratch []Request
}

// New validates the configuration and builds a runtime with an empty
// schedule cache (or bound to cfg.SharedCache).
func New(cfg Config) (*Runtime, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("serve: nil platform")
	}
	if cfg.MaxBatch < 0 || cfg.MaxQueue < 0 || cfg.AdmitSLOFactor < 0 || cfg.MaxWaitRounds < 0 || cfg.ScoreBeam < 0 {
		return nil, fmt.Errorf("serve: negative config value")
	}
	former := cfg.Mix
	if former == nil {
		if MixPolicyName(cfg.MixPolicy) == MixContentionAware {
			former = ContentionAwareMix(cfg.ScoreBeam)
		} else {
			var err error
			former, err = NewMixFormer(cfg.MixPolicy)
			if err != nil {
				return nil, err
			}
		}
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Platform.Name
	}
	if cfg.MaxBatch == 0 {
		for _, a := range cfg.Platform.Accels {
			if a.Kind != soc.CPU {
				cfg.MaxBatch++
			}
		}
		if cfg.MaxBatch == 0 {
			cfg.MaxBatch = 1
		}
	}
	cache := cfg.SharedCache
	if cache != nil {
		cc := cache.cfg
		if cc.Platform.Name != cfg.Platform.Name {
			return nil, fmt.Errorf("serve: shared cache is for %s, runtime for %s", cc.Platform.Name, cfg.Platform.Name)
		}
		if cc.Objective != cfg.Objective {
			return nil, fmt.Errorf("serve: shared cache objective %s != runtime objective %s", cc.Objective, cfg.Objective)
		}
		if cc.Solve != (cfg.Policy == ContentionAware) {
			return nil, fmt.Errorf("serve: shared cache solve mode does not match policy %s", cfg.Policy)
		}
		// Once a cache is shared, its config governs solving — a silently
		// differing runtime knob would be dropped, so fail fast instead.
		if cc.SolverTimeScale != cfg.SolverTimeScale {
			return nil, fmt.Errorf("serve: shared cache solver time scale %g != runtime %g", cc.SolverTimeScale, cfg.SolverTimeScale)
		}
		if cc.MaxGroups != cfg.MaxGroups {
			return nil, fmt.Errorf("serve: shared cache max groups %d != runtime %d", cc.MaxGroups, cfg.MaxGroups)
		}
		if cc.Portfolio != cfg.Portfolio {
			return nil, fmt.Errorf("serve: shared cache portfolio mode %v != runtime %v", cc.Portfolio, cfg.Portfolio)
		}
	} else {
		var err error
		cache, err = NewCache(CacheConfig{
			Platform:        cfg.Platform,
			Objective:       cfg.Objective,
			Solve:           cfg.Policy == ContentionAware,
			SolverTimeScale: cfg.SolverTimeScale,
			MaxGroups:       cfg.MaxGroups,
			Portfolio:       cfg.Portfolio,
		})
		if err != nil {
			return nil, err
		}
	}
	if cfg.Tracer != nil {
		cache.AttachTracer(cfg.Tracer)
	}
	if cfg.SharedCache == nil {
		// A private cache belongs to this runtime, so its events and
		// metrics carry the runtime's (possibly per-comparison-leg)
		// name; a shared cache keeps platform-level attribution.
		cache.name = cfg.Name
	}
	rt := &Runtime{
		cfg:        cfg,
		cache:      cache,
		former:     former,
		standalone: map[string]float64{},
		demand:     map[string]float64{},
		prepErr:    map[string]error{},
		queued:     map[string]int{},
		lastSched:  map[string]*schedule.Schedule{},
	}
	if cfg.SketchMetrics {
		rt.acc = newStreamStats()
	}
	return rt, nil
}

// DefaultMaxWaitRounds is the starvation bound under non-FIFO mix
// policies: the oldest eligible request is forced into the next round
// after being passed over this many consecutive times.
const DefaultMaxWaitRounds = 4

// maxWait resolves the configured starvation bound.
func (r *Runtime) maxWait() int {
	if r.cfg.MaxWaitRounds > 0 {
		return r.cfg.MaxWaitRounds
	}
	return DefaultMaxWaitRounds
}

// Cache exposes the runtime's schedule cache (for inspection and tests).
func (r *Runtime) Cache() *Cache { return r.cache }

// Name returns the device label (Config.Name, default the platform name).
func (r *Runtime) Name() string { return r.cfg.Name }

// Platform returns the SoC the runtime serves on.
func (r *Runtime) Platform() *soc.Platform { return r.cfg.Platform }

// MixPolicy returns the active mix-forming policy's name.
func (r *Runtime) MixPolicy() string { return r.former.Name() }

// SetMix swaps the mix-forming policy, taking effect at the next dispatch
// round (nil restores the FIFO default). The control plane uses it to
// choose a policy per device from offered-mix pressure; the swap survives
// Reset, like the schedule cache.
func (r *Runtime) SetMix(m MixFormer) {
	if m == nil {
		m = FIFO()
	}
	r.former = m
}

// ClockMs returns the end of the last dispatched round — the earliest
// virtual time the device is free again.
func (r *Runtime) ClockMs() float64 { return r.clockMs }

// QueueDepth returns the number of admitted, undispatched requests.
func (r *Runtime) QueueDepth() int { return len(r.pending) }

// BusyMs returns the total virtual time the device spent executing
// dispatch rounds — the numerator of its utilization. The control plane
// windows successive readings over its tick period to decide scaling.
func (r *Runtime) BusyMs() float64 { return r.busyMs }

// Rounds returns the number of dispatch rounds executed so far.
func (r *Runtime) Rounds() int { return r.rounds }

// Completions returns the outcomes recorded so far (served and rejected),
// in processing order. The slice is the runtime's own; callers must not
// mutate it.
func (r *Runtime) Completions() []Completion { return r.completions }

// CacheCounters returns this runtime's own cache effectiveness: lookups it
// performed that hit or missed, and deployments that advanced to a newer
// solver incumbent. With a private cache these equal the cache's counters;
// with a shared cache the cache aggregates over the whole device group.
func (r *Runtime) CacheCounters() (hits, misses, upgrades int) {
	return r.hits, r.misses, r.upgrades
}

// Reset rewinds the runtime to the start of a fresh virtual timeline,
// dropping pending requests, completions and local cache counters. The
// schedule cache is retained — solved mixes stay warm — but a private
// cache is rewound with the runtime so its entries re-anchor to the new
// timeline (a shared cache belongs to the fleet, which rewinds it once
// per run across all devices).
func (r *Runtime) Reset() {
	r.clockMs = 0
	r.busyMs = 0
	r.pending = nil
	r.waited = nil
	r.queued = map[string]int{}
	r.completions = nil
	r.rounds = 0
	r.hits, r.misses, r.upgrades = 0, 0, 0
	r.lastSched = map[string]*schedule.Schedule{}
	r.peakQueue = 0
	r.forced = 0
	if r.cfg.SketchMetrics {
		r.acc = newStreamStats()
	}
	if r.cfg.SharedCache == nil {
		r.cache.Rewind()
	}
}

// trace emits one event with the runtime's device label filled in; no-op
// without a configured tracer.
func (r *Runtime) trace(e obs.Event) {
	if r.cfg.Tracer == nil {
		return
	}
	e.Device = r.cfg.Name
	r.cfg.Tracer.Emit(e)
}

// record registers one outcome: it appends the completion, feeds the
// streaming accumulator, and emits the lifecycle event. Every completion
// — served or rejected — flows through here.
func (r *Runtime) record(c Completion) {
	r.completions = append(r.completions, c)
	if r.acc != nil {
		r.acc.observe(c)
	}
	if r.cfg.Tracer == nil {
		return
	}
	if c.Rejected {
		r.trace(obs.Event{AtMs: math.Max(r.clockMs, c.ArrivalMs), Kind: obs.KindReject,
			Tenant: c.Tenant, Network: c.Network, Request: c.ID, Detail: c.RejectReason})
		return
	}
	r.trace(obs.Event{AtMs: c.EndMs, Kind: obs.KindComplete,
		Tenant: c.Tenant, Network: c.Network, Request: c.ID, Value: c.LatencyMs})
	if c.Violated {
		r.trace(obs.Event{AtMs: c.EndMs, Kind: obs.KindViolate,
			Tenant: c.Tenant, Network: c.Network, Request: c.ID, Value: c.LatencyMs - c.SLOMs})
	}
}

// characterize fills the per-network estimate memos (standalone service
// time and memory demand) with one core.Prepare, negative-caching the
// failure: a network whose characterization fails once is never
// re-prepared — the hot dispatch path (demand ranking, spread probes,
// admission and backlog estimates) must not repeat a failing prepare
// every round.
func (r *Runtime) characterize(network string) error {
	if _, ok := r.standalone[network]; ok {
		return nil
	}
	if err, ok := r.prepErr[network]; ok {
		return err
	}
	r.prepares++
	_, pr, err := core.Prepare(core.Request{
		Platform:  r.cfg.Platform,
		Networks:  []string{network},
		MaxGroups: r.cfg.MaxGroups,
	})
	if err != nil {
		r.prepErr[network] = err
		return err
	}
	r.standalone[network] = schedule.MinBaseLatencyMs(pr, 0, 1)
	var weighted, total float64
	for g := range pr.Groups[0] {
		best := pr.Allowed[0]
		for _, a := range pr.Allowed {
			if pr.Exec[0][g][a].LatencyMs < pr.Exec[0][g][best].LatencyMs {
				best = a
			}
		}
		e := pr.Exec[0][g][best]
		weighted += e.LatencyMs * e.DemandGBps
		total += e.LatencyMs
	}
	d := 0.0
	if total > 0 {
		d = weighted / total
	}
	r.demand[network] = d
	return nil
}

// PrepareCalls reports how many core.Prepare characterizations the
// runtime's estimators have issued — the regression signal that the
// memoization (positive and negative) actually short-circuits the hot
// path.
func (r *Runtime) PrepareCalls() int { return r.prepares }

// StandaloneMs estimates a network's contention-free service time on this
// device: the minimum per-group latency over the allowed accelerators. It
// is the admission controller's service-time estimate and the affinity
// placement signal. It characterizes directly (core.Prepare) rather than
// going through the schedule cache: admission needs no solve, and must not
// perturb the cache's hit/upgrade accounting. Failures are memoized like
// successes, so a network that cannot be characterized costs one prepare,
// ever.
func (r *Runtime) StandaloneMs(network string) (float64, error) {
	if err := r.characterize(network); err != nil {
		return 0, err
	}
	return r.standalone[network], nil
}

// DemandGBps estimates a network's standalone memory demand on this
// device: the time-weighted mean of per-group demand along the fastest
// per-group accelerator path (the same path StandaloneMs costs). It is
// the demand-balance mix policy's ranking signal — computed from the
// profiler's characterization, memoized per network (errors included),
// and independent of the schedule cache so demand ranking never perturbs
// hit accounting.
func (r *Runtime) DemandGBps(network string) (float64, error) {
	if err := r.characterize(network); err != nil {
		return 0, err
	}
	return r.demand[network], nil
}

// batchScorer builds the round's BatchScorer: the analytic contention
// model applied to the schedule the runtime would actually deploy for a
// candidate batch's mix right now — Deployable on the mix-keyed cache
// entry, whether live (dispatched before) or a scoring probe. Probes
// solve speculatively with their replay anchored at first-probe time, so
// a candidate the policy keeps weighing keeps improving — and is already
// warm if it eventually wins. Scoring never touches the cache's
// hit/miss/upgrade accounting, so a scored-but-not-dispatched mix leaves
// no trace in the summary.
func (r *Runtime) batchScorer(cands []Candidate, startMs float64) BatchScorer {
	return func(sel []int) (BatchScore, bool) {
		if len(sel) == 0 {
			return BatchScore{}, false
		}
		idx := append([]int(nil), sel...)
		sort.Ints(idx)
		// Canonical mix order mirrors dispatch: stable-sorted by network
		// name, queue order among equals, so StreamEndMs maps 1:1.
		perm := make([]int, len(idx))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool {
			return cands[idx[perm[a]]].Network < cands[idx[perm[b]]].Network
		})
		mix := make([]string, len(idx))
		for k, pi := range perm {
			mix[k] = cands[idx[pi]].Network
		}
		ev, err := r.scoreMix(mix, startMs)
		if err != nil {
			return BatchScore{}, false
		}
		r.trace(obs.Event{AtMs: startMs, Kind: obs.KindMixScore, Request: obs.NoRequest,
			Detail: strings.Join(mix, "+"), Value: ev.MakespanMs})
		ends := make([]float64, len(idx))
		for k, pi := range perm {
			ends[pi] = ev.Result.StreamEndMs[k]
		}
		return BatchScore{MakespanMs: ev.MakespanMs, EndMs: ends}, true
	}
}

// batchScorerMany is batchScorer over a whole candidate set at once: the
// unseen mixes' characterizations and speculative solves run concurrently
// (Cache.ProbeAll), and each distinct entry's deployable schedule is
// evaluated on its own goroutine (Entry.Evaluate memoizes per entry, and
// ProbeAll dedupes candidate mixes onto one entry, so no entry is touched
// by two goroutines). Scores, cache counters and trace events are
// identical to scoring each sel serially — results are assembled and
// events emitted in sel order after the concurrent work joins.
func (r *Runtime) batchScorerMany(cands []Candidate, startMs float64) BatchScorerMany {
	return func(sels [][]int) ([]BatchScore, []bool) {
		scores := make([]BatchScore, len(sels))
		oks := make([]bool, len(sels))
		idxs := make([][]int, len(sels))
		perms := make([][]int, len(sels))
		mixes := make([][]string, len(sels))
		for i, sel := range sels {
			if len(sel) == 0 {
				continue
			}
			idx := append([]int(nil), sel...)
			sort.Ints(idx)
			perm := make([]int, len(idx))
			for k := range perm {
				perm[k] = k
			}
			sort.SliceStable(perm, func(a, b int) bool {
				return cands[idx[perm[a]]].Network < cands[idx[perm[b]]].Network
			})
			mix := make([]string, len(idx))
			for k, pi := range perm {
				mix[k] = cands[idx[pi]].Network
			}
			idxs[i], perms[i], mixes[i] = idx, perm, mix
		}
		probeIn := make([][]string, 0, len(sels))
		probePos := make([]int, 0, len(sels))
		for i, mix := range mixes {
			if mix != nil {
				probeIn = append(probeIn, mix)
				probePos = append(probePos, i)
			}
		}
		entries, _ := r.cache.ProbeAll(probeIn, startMs)
		type evalRes struct {
			ev  *schedule.Eval
			err error
		}
		evalFor := map[*Entry]*evalRes{}
		var order []*Entry
		for _, e := range entries {
			if e != nil && evalFor[e] == nil {
				evalFor[e] = &evalRes{}
				order = append(order, e)
			}
		}
		var wg sync.WaitGroup
		for _, e := range order {
			wg.Add(1)
			//detlint:allow baregoroutine beam scorer pool: disjoint evalRes slots per entry, wg.Wait barrier, scores consumed in deterministic beam order
			go func(e *Entry, res *evalRes) {
				defer wg.Done()
				s := e.Naive
				if r.cfg.Policy == ContentionAware {
					s = e.Deployable(startMs)
				}
				res.ev, res.err = e.Evaluate(s)
			}(e, evalFor[e])
		}
		wg.Wait()
		for k, i := range probePos {
			e := entries[k]
			if e == nil {
				continue
			}
			res := evalFor[e]
			if res.err != nil {
				continue
			}
			ev := res.ev
			r.trace(obs.Event{AtMs: startMs, Kind: obs.KindMixScore, Request: obs.NoRequest,
				Detail: strings.Join(mixes[i], "+"), Value: ev.MakespanMs})
			ends := make([]float64, len(idxs[i]))
			for k, pi := range perms[i] {
				ends[pi] = ev.Result.StreamEndMs[k]
			}
			scores[i], oks[i] = BatchScore{MakespanMs: ev.MakespanMs, EndMs: ends}, true
		}
		return scores, oks
	}
}

// scoreMix is the one scoring primitive both mix-aware layers share: the
// ground-truth evaluation of the schedule this runtime would deploy for
// the canonical mix at virtual time atMs — the cache entry's current
// incumbent under the contention-aware policy, the naive schedule under
// the naive one — via a probe, so unseen mixes are characterized (and
// speculatively solved) without touching hit/miss accounting. Batch
// scoring and fleet placement must rank with the same signal, so any
// change to schedule choice belongs here.
func (r *Runtime) scoreMix(mix []string, atMs float64) (*schedule.Eval, error) {
	entry, _, err := r.cache.Probe(mix, atMs)
	if err != nil {
		return nil, err
	}
	s := entry.Naive
	if r.cfg.Policy == ContentionAware {
		s = entry.Deployable(atMs)
	}
	return entry.Evaluate(s)
}

// MixFitMs predicts how well a network would co-run with this device's
// pending work: the minimum model-predicted makespan of pairing the
// arrival with any distinct pending network, scored exactly as the
// contention-aware mix policy scores candidate batches (warm schedules
// for dispatched mixes, memoized naive probes for unseen ones). With
// nothing pending it degrades to the standalone estimate — an idle device
// offers the contention-free co-run. The fleet's mix-aware placer steers
// by it, extending mix-awareness above the device boundary.
func (r *Runtime) MixFitMs(network string) (float64, error) {
	if len(r.pending) == 0 {
		return r.StandaloneMs(network)
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(r.pending))
	for _, p := range r.pending {
		if !seen[p.Network] {
			seen[p.Network] = true
			names = append(names, p.Network)
		}
	}
	sort.Strings(names)
	best := math.Inf(1)
	for _, q := range names {
		ev, err := r.scoreMix([]string{network, q}, r.clockMs)
		if err != nil {
			return 0, err
		}
		best = math.Min(best, ev.MakespanMs)
	}
	return best, nil
}

// PendingDemandSpread is the gap between the heaviest and lightest
// estimated memory demand among pending requests' networks — the
// offered-mix pressure signal the control plane reads when choosing a
// device's mix policy. Zero with fewer than two pending requests.
func (r *Runtime) PendingDemandSpread() (float64, error) {
	if len(r.pending) < 2 {
		return 0, nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range r.pending {
		d, err := r.DemandGBps(p.Network)
		if err != nil {
			return 0, err
		}
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return hi - lo, nil
}

// BacklogMs estimates the queueing delay a new arrival would see: the sum
// of standalone service estimates over pending requests, divided by the
// dispatch width.
func (r *Runtime) BacklogMs() (float64, error) {
	var total float64
	for _, p := range r.pending {
		ms, err := r.StandaloneMs(p.Network)
		if err != nil {
			return 0, err
		}
		total += ms
	}
	return total / float64(r.cfg.MaxBatch), nil
}

// Admission rejection reasons.
const (
	RejectInvalidTenant  = "invalid-tenant"
	RejectUnknownNetwork = "unknown-network"
	RejectQueueFull      = "queue-full"
	RejectSLO            = "slo-unattainable"
)

// admit decides whether to accept a request given the current backlog.
// It returns a non-empty reason when the request is rejected. Malformed
// requests (no tenant, a reserved tenant name, an unknown network) are
// rejected rather than erroring, so one bad request cannot take down the
// serving loop.
func (r *Runtime) admit(req Request, nowMs float64) (string, error) {
	if req.Tenant == "" || req.Tenant == totalName {
		return RejectInvalidTenant, nil
	}
	if _, err := nn.ByName(req.Network); err != nil {
		return RejectUnknownNetwork, nil
	}
	if r.cfg.MaxQueue > 0 && r.queued[req.Tenant] >= r.cfg.MaxQueue {
		return RejectQueueFull, nil
	}
	if r.cfg.AdmitSLOFactor > 0 && req.SLOMs > 0 {
		backlog, err := r.BacklogMs()
		if err != nil {
			return "", err
		}
		service, err := r.StandaloneMs(req.Network)
		if err != nil {
			return "", err
		}
		est := (nowMs - req.ArrivalMs) + backlog + service
		if est > r.cfg.AdmitSLOFactor*req.SLOMs {
			return RejectSLO, nil
		}
	}
	return "", nil
}

// Offer hands the runtime one arriving request. The admission controller
// runs at max(device clock, arrival time) — a request arriving while a
// round is in flight is judged at the round boundary, exactly as in the
// single-device serving loop. Rejections are recorded as completions; the
// returned boolean reports whether the request was rejected. Requests must
// be offered in nondecreasing arrival order.
func (r *Runtime) Offer(req Request) (bool, error) {
	now := math.Max(r.clockMs, req.ArrivalMs)
	r.trace(obs.Event{AtMs: req.ArrivalMs, Kind: obs.KindArrive,
		Tenant: req.Tenant, Network: req.Network, Request: req.ID})
	reason, err := r.admit(req, now)
	if err != nil {
		return false, err
	}
	if reason != "" {
		r.record(Completion{Request: req, Rejected: true, RejectReason: reason})
		return true, nil
	}
	r.queued[req.Tenant]++
	r.pending = append(r.pending, req)
	r.waited = append(r.waited, 0)
	if len(r.pending) > r.peakQueue {
		r.peakQueue = len(r.pending)
	}
	r.trace(obs.Event{AtMs: now, Kind: obs.KindAdmit,
		Tenant: req.Tenant, Network: req.Network, Request: req.ID, Value: float64(len(r.pending))})
	return false, nil
}

// NextStartMs returns the earliest virtual time the next dispatch round can
// begin: the device must be free and the oldest pending request must have
// arrived. +Inf when nothing is pending.
func (r *Runtime) NextStartMs() float64 {
	if len(r.pending) == 0 {
		return math.Inf(1)
	}
	return math.Max(r.clockMs, r.pending[0].ArrivalMs)
}

// Step dispatches one round: the mix-forming policy selects up to
// MaxBatch eligible pending requests (all arrived by the round start) as
// the workload mix, the schedule cache supplies the mix's schedule, and
// the ground-truth simulator executes it. The runtime enforces the
// starvation bound around the policy (see Config.MaxWaitRounds). The
// device clock advances to the round's end. Step is a no-op when nothing
// is pending.
func (r *Runtime) Step() error {
	start := r.NextStartMs()
	if math.IsInf(start, 1) {
		return nil
	}
	// Pending is in arrival order, so the eligible set — everything that
	// has arrived by the round start — is a contiguous prefix.
	m := len(r.pending)
	for m > 0 && r.pending[m-1].ArrivalMs > start {
		m--
	}
	// The FIFO former only ever reads the first MaxBatch candidates, so
	// cap the materialized view and keep the default hot path O(MaxBatch)
	// per round instead of O(backlog) — the pre-mix-former dispatcher's
	// cost. (Requests beyond the cap would be dispatched before their
	// wait could ever matter, so aging them is moot.)
	if _, fifo := r.former.(fifoFormer); fifo && m > r.cfg.MaxBatch {
		m = r.cfg.MaxBatch
	}
	if cap(r.candScratch) < m {
		r.candScratch = make([]Candidate, m)
	}
	cands := r.candScratch[:m]
	for i := 0; i < m; i++ {
		cands[i] = Candidate{Request: r.pending[i], WaitedRounds: r.waited[i]}
	}
	if r.former.DemandAware() {
		for i := range cands {
			d, err := r.DemandGBps(cands[i].Network)
			if err != nil {
				return err
			}
			cands[i].DemandGBps = d
		}
	}
	in := FormInput{StartMs: start, MaxBatch: r.cfg.MaxBatch, Eligible: cands}
	if sa, ok := r.former.(scoreAware); ok && sa.ScoreAware() {
		in.Score = r.batchScorer(cands, start)
		in.ScoreMany = r.batchScorerMany(cands, start)
	}
	sel := r.former.Form(in)
	bound := r.maxWait()
	if r.cfg.AdaptiveMaxWait && len(cands) > 0 {
		bound = adaptiveWaitBound(bound, cands[0], start)
	}
	if len(cands) > 0 && cands[0].WaitedRounds >= bound && !selectedIndex(sel, 0) {
		// The starvation bound overrides the policy: the oldest eligible
		// request is forced into this batch.
		r.forced++
		r.trace(obs.Event{AtMs: start, Kind: obs.KindForce,
			Tenant: cands[0].Tenant, Network: cands[0].Network, Request: cands[0].ID,
			Detail: r.former.Name(), Value: float64(cands[0].WaitedRounds)})
	}
	picks, err := composeBatch(sel, cands, r.cfg.MaxBatch, bound)
	if err != nil {
		return fmt.Errorf("serve: mix policy %s: %v", r.former.Name(), err)
	}
	r.trace(obs.Event{AtMs: start, Kind: obs.KindMixForm, Request: obs.NoRequest,
		Detail: r.former.Name(), Value: float64(len(picks))})
	n := len(picks)
	batch := r.batchScratch[:0]
	for _, i := range picks {
		batch = append(batch, r.pending[i])
	}
	r.batchScratch = batch
	// Remove the batch from the queue (picks are in ascending queue
	// order); every eligible request passed over ages one round.
	keepReq, keepWait, pi := r.pending[:0], r.waited[:0], 0
	for i := range r.pending {
		if pi < len(picks) && picks[pi] == i {
			pi++
			continue
		}
		w := r.waited[i]
		if i < m {
			w++
		}
		keepReq = append(keepReq, r.pending[i])
		keepWait = append(keepWait, w)
	}
	r.pending, r.waited = keepReq, keepWait
	for _, b := range batch {
		r.queued[b.Tenant]--
	}
	// Canonical mix order: by network name, FIFO among equals, so the
	// batch maps 1:1 onto the cached problem's items.
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].Network < batch[j].Network })
	mix := r.mixScratch[:0]
	for _, b := range batch {
		mix = append(mix, b.Network)
	}
	r.mixScratch = mix
	entry, hit, err := r.cache.Lookup(mix, start)
	if err != nil {
		return err
	}
	if hit {
		r.hits++
		r.trace(obs.Event{AtMs: start, Kind: obs.KindCacheHit, Request: obs.NoRequest, Detail: entry.Key})
	} else {
		r.misses++
		r.trace(obs.Event{AtMs: start, Kind: obs.KindCacheMiss, Request: obs.NoRequest, Detail: entry.Key})
	}
	s := entry.Naive
	if r.cfg.Policy == ContentionAware {
		s = entry.Use(start)
		if prev, ok := r.lastSched[entry.Key]; ok && s != prev {
			r.upgrades++
			r.trace(obs.Event{AtMs: start, Kind: obs.KindUpgrade, Request: obs.NoRequest, Detail: entry.Key})
		}
		r.lastSched[entry.Key] = s
	}
	ev, err := entry.Evaluate(s)
	if err != nil {
		return err
	}
	r.trace(obs.Event{AtMs: start, DurMs: ev.MakespanMs, Kind: obs.KindDispatch,
		Request: obs.NoRequest, Detail: entry.Key, Value: float64(n)})
	if r.cfg.Audit != nil || r.cfg.Tracer != nil {
		if err := r.auditRound(entry, s, ev, batch, start); err != nil {
			return err
		}
	}
	for k, b := range batch {
		end := start + ev.Result.StreamEndMs[k]
		c := Completion{
			Request:         b,
			StartMs:         start,
			EndMs:           end,
			LatencyMs:       end - b.ArrivalMs,
			RoundMakespanMs: ev.MakespanMs,
		}
		if b.SLOMs > 0 && c.LatencyMs > b.SLOMs {
			c.Violated = true
		}
		r.record(c)
	}
	r.clockMs = start + ev.MakespanMs
	r.busyMs += ev.MakespanMs
	r.rounds++
	return nil
}

// auditRound is the prediction audit of one dispatch round: the deployed
// schedule is re-evaluated under the analytic contention model
// (Entry.Predict) and the model's numbers — round makespan, per-request
// end offsets — are paired with the ground-truth execution the round
// actually ran (ev). Pairs stream into the audit aggregates, and under a
// tracer each round and each request leaves an "audit" event carrying the
// pair plus the queue wait and SLO — everything cmd/obsreport needs to
// attribute a violation to misprediction vs. waiting. Purely
// observational: nothing here touches schedule choice, counters or the
// clock, and Predict's evaluations are memoized per (mix, schedule).
func (r *Runtime) auditRound(entry *Entry, s *schedule.Schedule, ev *schedule.Eval, batch []Request, start float64) error {
	pv, err := entry.Predict(s)
	if err != nil {
		return err
	}
	r.cfg.Audit.Observe("serve", "mix", entry.Key, pv.MakespanMs, ev.MakespanMs)
	r.trace(obs.Event{AtMs: start, Kind: obs.KindAudit, Request: obs.NoRequest,
		Detail: entry.Key, Value: pv.MakespanMs - ev.MakespanMs,
		Metrics: map[string]float64{
			"predicted_ms": pv.MakespanMs,
			"actual_ms":    ev.MakespanMs,
		}})
	for k, b := range batch {
		pred := start + pv.Result.StreamEndMs[k] - b.ArrivalMs
		act := start + ev.Result.StreamEndMs[k] - b.ArrivalMs
		r.cfg.Audit.Observe("serve", "tenant", b.Tenant, pred, act)
		r.cfg.Audit.Observe("serve", "network", b.Network, pred, act)
		r.trace(obs.Event{AtMs: start, Kind: obs.KindAudit,
			Tenant: b.Tenant, Network: b.Network, Request: b.ID, Detail: entry.Key,
			Value: pred - act,
			Metrics: map[string]float64{
				"predicted_lat_ms": pred,
				"actual_lat_ms":    act,
				"queue_wait_ms":    start - b.ArrivalMs,
				"slo_ms":           b.SLOMs,
			}})
	}
	return nil
}

// selectedIndex reports whether the policy's ranked selection contains
// index i (selections are short — at most MaxBatch — so a scan is fine).
func selectedIndex(sel []int, i int) bool {
	for _, s := range sel {
		if s == i {
			return true
		}
	}
	return false
}

// adaptiveWaitBound scales the starvation bound by the oldest eligible
// request's remaining SLO slack at the round start: full slack (or no
// SLO) keeps the configured bound, an expired deadline tightens it to one
// round, and the bound interpolates linearly in between — so urgent
// tenants stop waiting behind a policy's ranking sooner, without
// collapsing relaxed traffic back to FIFO.
func adaptiveWaitBound(maxWait int, oldest Candidate, startMs float64) int {
	if oldest.SLOMs <= 0 {
		return maxWait
	}
	frac := oldest.SlackMs(startMs) / oldest.SLOMs
	switch {
	case frac >= 1:
		return maxWait
	case frac <= 0:
		return 1
	default:
		return 1 + int(frac*float64(maxWait-1))
	}
}

// Summary folds the outcomes recorded so far into a serving summary. In
// sketch mode (Config.SketchMetrics) the percentile columns come from the
// streaming accumulator instead of stored samples.
func (r *Runtime) Summary() *Summary {
	var sum *Summary
	if r.acc != nil {
		sum = r.acc.summarize(r.cfg.Policy, r.cfg.Platform.Name, r.cfg.Objective)
	} else {
		sum = Summarize(r.completions, r.cfg.Policy, r.cfg.Platform.Name, r.cfg.Objective)
	}
	sum.MixPolicy = r.former.Name()
	sum.Rounds = r.rounds
	sum.CacheHits, sum.CacheMisses, sum.CacheUpgrades = r.hits, r.misses, r.upgrades
	if t := sum.CacheHits + sum.CacheMisses; t > 0 {
		sum.CacheHitRate = float64(sum.CacheHits) / float64(t)
	}
	return sum
}

// Serve executes the trace in virtual time and returns the serving
// summary. The trace may be unsorted; it is served in arrival order. Serve
// rewinds the virtual timeline first (Reset), so repeated calls on one
// runtime serve independent runs over a warm schedule cache.
func (r *Runtime) Serve(tr Trace) (*Summary, error) {
	if len(tr) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}
	r.Reset()
	reqs := append(Trace(nil), tr...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].ArrivalMs < reqs[j].ArrivalMs })

	next := 0
	for next < len(reqs) || len(r.pending) > 0 {
		// Arrivals up to the next round boundary are offered first, so
		// admission sees them exactly as the round-loop formulation did.
		if next < len(reqs) && reqs[next].ArrivalMs <= r.NextStartMs() {
			if _, err := r.Offer(reqs[next]); err != nil {
				return nil, err
			}
			next++
			continue
		}
		if err := r.Step(); err != nil {
			return nil, err
		}
	}
	r.FillMetrics(r.cfg.Metrics)
	return r.Summary(), nil
}

// FillMetrics snapshots the runtime's counters into the registry under
// the "serve.<name>." namespace (plus the cache's own under
// "cache.<platform>."). No-op on a nil registry. Counters use Add so a
// comparison driver accumulating several legs with identical names sums
// them; pass distinct Config.Name values to keep legs apart.
func (r *Runtime) FillMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p := "serve." + r.cfg.Name + "."
	reg.Add(p+"rounds", float64(r.rounds))
	reg.Add(p+"busy_ms", r.busyMs)
	reg.Set(p+"clock_ms", r.clockMs)
	reg.Add(p+"completions", float64(len(r.completions)))
	reg.Set(p+"queue_depth", float64(len(r.pending)))
	reg.Set(p+"queue_peak", float64(r.peakQueue))
	reg.Add(p+"cache_hits", float64(r.hits))
	reg.Add(p+"cache_misses", float64(r.misses))
	reg.Add(p+"cache_upgrades", float64(r.upgrades))
	reg.Add(p+"prepare_calls", float64(r.prepares))
	reg.Add(p+"forced_dispatches", float64(r.forced))
	if r.former.Name() == MixContentionAware {
		beam := r.cfg.ScoreBeam
		if beam <= 0 {
			beam = DefaultScoreBeam
		}
		reg.Set(p+"score_beam", float64(beam))
	}
	r.cache.FillMetrics(reg)
}

// legName is the base device label comparison drivers suffix per leg.
func legName(cfg Config) string {
	if cfg.Name != "" {
		return cfg.Name
	}
	if cfg.Platform != nil {
		return cfg.Platform.Name
	}
	return ""
}

// Comparison serves one trace under both policies.
type Comparison struct {
	Aware *Summary
	Naive *Summary
}

// Compare serves the same trace with the contention-aware runtime and the
// naive single-accelerator baseline, quantifying the win under load.
func Compare(cfg Config, tr Trace) (*Comparison, error) {
	out := &Comparison{}
	for _, pol := range []Policy{ContentionAware, NaiveGPUOnly} {
		c := cfg
		c.Policy = pol
		// Under a shared tracer the legs need distinct device tracks (and
		// metric namespaces); Name never reaches the summary, so renaming
		// is purely observational.
		if c.Tracer != nil || c.Metrics != nil {
			c.Name = legName(cfg) + "/" + pol.String()
		}
		rt, err := New(c)
		if err != nil {
			return nil, err
		}
		sum, err := rt.Serve(tr)
		if err != nil {
			return nil, err
		}
		if pol == ContentionAware {
			out.Aware = sum
		} else {
			out.Naive = sum
		}
	}
	return out, nil
}

// P99ImprovementPct is the contention-aware p99 latency reduction over the
// naive baseline, in percent (positive = aware is better).
func (c *Comparison) P99ImprovementPct() float64 {
	if c.Naive.Total.P99Ms <= 0 {
		return 0
	}
	return 100 * (1 - c.Aware.Total.P99Ms/c.Naive.Total.P99Ms)
}

// ViolationsAvoided is the reduction in SLO violations.
func (c *Comparison) ViolationsAvoided() int {
	return c.Naive.Total.Violations - c.Aware.Total.Violations
}

// MixComparison serves one trace under several mix-forming policies with
// everything else held fixed — the experiment that quantifies what batch
// formation is worth. Results[0] is the baseline the improvement helpers
// compare against.
type MixComparison struct {
	// Policies names the compared mix policies, in run order.
	Policies []string
	// Results holds one summary per policy, same order.
	Results []*Summary
}

// CompareMixes serves the same trace under each named mix policy (default:
// fifo, then demand-balance, then contention-aware) on otherwise identical
// runtimes. Each policy gets a fresh runtime and cache, so the comparison
// isolates batch formation from cache warmth.
func CompareMixes(cfg Config, tr Trace, policies ...string) (*MixComparison, error) {
	if len(policies) == 0 {
		policies = []string{MixFIFO, MixDemandBalance, MixContentionAware}
	}
	out := &MixComparison{Policies: append([]string(nil), policies...)}
	for _, pol := range policies {
		c := cfg
		c.MixPolicy = pol
		c.Mix = nil
		// Distinct per-leg tracks under a shared tracer, as in Compare.
		if c.Tracer != nil || c.Metrics != nil {
			c.Name = legName(cfg) + "/mix-" + MixPolicyName(pol)
		}
		rt, err := New(c)
		if err != nil {
			return nil, err
		}
		sum, err := rt.Serve(tr)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, sum)
	}
	return out, nil
}

// P99ImprovementPct is policy i's total-p99 reduction over the baseline
// (Results[0]), in percent (positive = policy i is better).
func (m *MixComparison) P99ImprovementPct(i int) float64 {
	if m.Results[0].Total.P99Ms <= 0 {
		return 0
	}
	return 100 * (1 - m.Results[i].Total.P99Ms/m.Results[0].Total.P99Ms)
}

// ThroughputImprovementPct is policy i's completed-throughput gain over
// the baseline, in percent.
func (m *MixComparison) ThroughputImprovementPct(i int) float64 {
	if m.Results[0].Total.ThroughputRPS <= 0 {
		return 0
	}
	return 100 * (m.Results[i].Total.ThroughputRPS/m.Results[0].Total.ThroughputRPS - 1)
}
