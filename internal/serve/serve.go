// Package serve is an online, contention-aware inference-serving runtime
// layered on the HaX-CoNN engine: named tenants submit inference requests
// for zoo networks with Poisson or periodic arrivals and per-tenant SLOs;
// an admission controller and dispatcher map admitted requests onto the
// SoC's accelerators using contention-aware schedules and execute them on
// the ground-truth simulator in virtual time.
//
// The dispatcher works in rounds: at each round it takes the oldest
// pending requests (up to MaxBatch), forms the active workload mix — the
// multiset of co-running networks — and asks the schedule cache for that
// mix's schedule. Repeated mixes reuse solved schedules; unseen mixes are
// served immediately on the best naive schedule while the anytime solver's
// incumbent stream upgrades the cache entry in the (virtual) background,
// exactly the D-HaX-CoNN operating regime of Sec. 3.5 applied to
// multi-tenant traffic instead of a single camera loop.
//
// Two policies make the contention-aware win measurable under load:
//
//   - ContentionAware: HaX-CoNN schedules from the cache, upgraded online.
//   - NaiveGPUOnly: the single-accelerator greedy baseline — every network
//     on the fastest accelerator, co-runners serializing behind each other.
//
// Compare serves the same trace under both and reports per-tenant
// p50/p95/p99 latency, SLO violations, throughput and cache hit rate.
package serve

import (
	"fmt"
	"sort"

	"haxconn/internal/core"
	"haxconn/internal/schedule"
	"haxconn/internal/soc"
)

// Policy selects how dispatched mixes are scheduled.
type Policy int

// Policies.
const (
	// ContentionAware serves each mix with the HaX-CoNN schedule from the
	// cache, upgraded as the background anytime solver improves it.
	ContentionAware Policy = iota
	// NaiveGPUOnly serves every mix with the single-accelerator greedy
	// baseline: all layers of all networks on the fastest accelerator.
	NaiveGPUOnly
)

// String returns the policy name.
func (p Policy) String() string {
	if p == NaiveGPUOnly {
		return "naive-gpu-only"
	}
	return "contention-aware"
}

// Request is one inference request in a trace.
type Request struct {
	// ID is the position of the request in the trace (assigned by the
	// load generator; informational).
	ID int
	// Tenant names the submitting client.
	Tenant string
	// Network is the zoo network to run.
	Network string
	// ArrivalMs is the virtual arrival time.
	ArrivalMs float64
	// SLOMs is the per-request latency objective; a completed request
	// whose arrival-to-completion latency exceeds it counts as an SLO
	// violation. Zero disables SLO accounting for the request.
	SLOMs float64
}

// Trace is a request sequence, ordered by arrival time.
type Trace []Request

// Config controls a serving runtime.
type Config struct {
	// Platform is the target SoC (required).
	Platform *soc.Platform
	// Objective is the per-mix scheduling objective (default MinMaxLatency).
	Objective schedule.Objective
	// Policy selects contention-aware or naive scheduling.
	Policy Policy
	// MaxBatch caps the number of requests dispatched concurrently in one
	// round (the size of the workload mix). Default: the number of
	// DNN-capable accelerators on the platform.
	MaxBatch int
	// MaxQueue caps a tenant's pending (admitted, undispatched) requests;
	// arrivals beyond it are rejected. Zero means unlimited.
	MaxQueue int
	// AdmitSLOFactor enables SLO-based load shedding: a request whose
	// estimated completion latency (queueing backlog plus standalone
	// service estimate) exceeds AdmitSLOFactor x SLO is rejected at
	// arrival. Zero admits regardless of SLO.
	AdmitSLOFactor float64
	// SolverTimeScale stretches the background solver's wall time when
	// mapping its incumbent stream onto the virtual serving timeline, so
	// upgrade dynamics at Z3-like solve times can be studied (see
	// autoloop.Config.SolverTimeScale). 1 means real time.
	SolverTimeScale float64
	// MaxGroups caps layer groups per network (0 = nn.DefaultMaxGroups).
	MaxGroups int
}

// Runtime is the serving executor: admission controller, dispatcher and
// schedule cache bound to one platform and policy.
type Runtime struct {
	cfg        Config
	cache      *Cache
	standalone map[string]float64 // per-network standalone service estimate
}

// New validates the configuration and builds a runtime with an empty
// schedule cache.
func New(cfg Config) (*Runtime, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("serve: nil platform")
	}
	if cfg.MaxBatch < 0 || cfg.MaxQueue < 0 || cfg.AdmitSLOFactor < 0 {
		return nil, fmt.Errorf("serve: negative config value")
	}
	if cfg.MaxBatch == 0 {
		for _, a := range cfg.Platform.Accels {
			if a.Kind != soc.CPU {
				cfg.MaxBatch++
			}
		}
		if cfg.MaxBatch == 0 {
			cfg.MaxBatch = 1
		}
	}
	cache, err := NewCache(CacheConfig{
		Platform:        cfg.Platform,
		Objective:       cfg.Objective,
		Solve:           cfg.Policy == ContentionAware,
		SolverTimeScale: cfg.SolverTimeScale,
		MaxGroups:       cfg.MaxGroups,
	})
	if err != nil {
		return nil, err
	}
	return &Runtime{cfg: cfg, cache: cache, standalone: map[string]float64{}}, nil
}

// Cache exposes the runtime's schedule cache (for inspection and tests).
func (r *Runtime) Cache() *Cache { return r.cache }

// standaloneMs estimates a network's contention-free service time: the
// minimum per-group latency over the allowed accelerators. It is the
// admission controller's service-time estimate. It characterizes directly
// (core.Prepare) rather than going through the schedule cache: admission
// needs no solve, and must not perturb the cache's hit/upgrade accounting.
func (r *Runtime) standaloneMs(network string) (float64, error) {
	if ms, ok := r.standalone[network]; ok {
		return ms, nil
	}
	_, pr, err := core.Prepare(core.Request{
		Platform:  r.cfg.Platform,
		Networks:  []string{network},
		MaxGroups: r.cfg.MaxGroups,
	})
	if err != nil {
		return 0, err
	}
	ms := schedule.MinBaseLatencyMs(pr, 0, 1)
	r.standalone[network] = ms
	return ms, nil
}

// admit decides whether to accept a request given the current backlog.
// It returns a non-empty reason when the request is rejected.
func (r *Runtime) admit(req Request, nowMs float64, pending []Request, queued map[string]int) (string, error) {
	if r.cfg.MaxQueue > 0 && queued[req.Tenant] >= r.cfg.MaxQueue {
		return "queue-full", nil
	}
	if r.cfg.AdmitSLOFactor > 0 && req.SLOMs > 0 {
		var backlog float64
		for _, p := range pending {
			ms, err := r.standaloneMs(p.Network)
			if err != nil {
				return "", err
			}
			backlog += ms
		}
		service, err := r.standaloneMs(req.Network)
		if err != nil {
			return "", err
		}
		est := (nowMs - req.ArrivalMs) + backlog/float64(r.cfg.MaxBatch) + service
		if est > r.cfg.AdmitSLOFactor*req.SLOMs {
			return "slo-unattainable", nil
		}
	}
	return "", nil
}

// Serve executes the trace in virtual time and returns the serving
// summary. The trace may be unsorted; it is served in arrival order.
func (r *Runtime) Serve(tr Trace) (*Summary, error) {
	if len(tr) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}
	reqs := append(Trace(nil), tr...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].ArrivalMs < reqs[j].ArrivalMs })

	var (
		completions []Completion
		pending     []Request
		queued      = map[string]int{}
		now         float64
		next        int
		rounds      int
	)
	for next < len(reqs) || len(pending) > 0 {
		// Idle until the next arrival when nothing is pending.
		if len(pending) == 0 && next < len(reqs) && reqs[next].ArrivalMs > now {
			now = reqs[next].ArrivalMs
		}
		// Admit everything that has arrived by now.
		for next < len(reqs) && reqs[next].ArrivalMs <= now {
			req := reqs[next]
			next++
			reason, err := r.admit(req, now, pending, queued)
			if err != nil {
				return nil, err
			}
			if reason != "" {
				completions = append(completions, Completion{Request: req, Rejected: true, RejectReason: reason})
				continue
			}
			queued[req.Tenant]++
			pending = append(pending, req)
		}
		if len(pending) == 0 {
			continue
		}
		// Dispatch one round: the oldest pending requests form the mix.
		n := r.cfg.MaxBatch
		if n > len(pending) {
			n = len(pending)
		}
		batch := append([]Request(nil), pending[:n]...)
		pending = append(pending[:0], pending[n:]...)
		for _, b := range batch {
			queued[b.Tenant]--
		}
		// Canonical mix order: by network name, FIFO among equals, so the
		// batch maps 1:1 onto the cached problem's items.
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].Network < batch[j].Network })
		mix := make([]string, n)
		for k, b := range batch {
			mix[k] = b.Network
		}
		entry, _, err := r.cache.Lookup(mix, now)
		if err != nil {
			return nil, err
		}
		s := entry.Naive
		if r.cfg.Policy == ContentionAware {
			s = entry.Use(now)
		}
		ev, err := entry.Evaluate(s)
		if err != nil {
			return nil, err
		}
		for k, b := range batch {
			end := now + ev.Result.StreamEndMs[k]
			c := Completion{
				Request:   b,
				StartMs:   now,
				EndMs:     end,
				LatencyMs: end - b.ArrivalMs,
			}
			if b.SLOMs > 0 && c.LatencyMs > b.SLOMs {
				c.Violated = true
			}
			completions = append(completions, c)
		}
		now += ev.MakespanMs
		rounds++
	}

	sum := Summarize(completions, r.cfg.Policy, r.cfg.Platform.Name, r.cfg.Objective)
	sum.Rounds = rounds
	sum.CacheHits, sum.CacheMisses, sum.CacheUpgrades = r.cache.Hits, r.cache.Misses, r.cache.Upgrades
	if t := sum.CacheHits + sum.CacheMisses; t > 0 {
		sum.CacheHitRate = float64(sum.CacheHits) / float64(t)
	}
	return sum, nil
}

// Comparison serves one trace under both policies.
type Comparison struct {
	Aware *Summary
	Naive *Summary
}

// Compare serves the same trace with the contention-aware runtime and the
// naive single-accelerator baseline, quantifying the win under load.
func Compare(cfg Config, tr Trace) (*Comparison, error) {
	out := &Comparison{}
	for _, pol := range []Policy{ContentionAware, NaiveGPUOnly} {
		c := cfg
		c.Policy = pol
		rt, err := New(c)
		if err != nil {
			return nil, err
		}
		sum, err := rt.Serve(tr)
		if err != nil {
			return nil, err
		}
		if pol == ContentionAware {
			out.Aware = sum
		} else {
			out.Naive = sum
		}
	}
	return out, nil
}

// P99ImprovementPct is the contention-aware p99 latency reduction over the
// naive baseline, in percent (positive = aware is better).
func (c *Comparison) P99ImprovementPct() float64 {
	if c.Naive.Total.P99Ms <= 0 {
		return 0
	}
	return 100 * (1 - c.Aware.Total.P99Ms/c.Naive.Total.P99Ms)
}

// ViolationsAvoided is the reduction in SLO violations.
func (c *Comparison) ViolationsAvoided() int {
	return c.Naive.Total.Violations - c.Aware.Total.Violations
}
