package experiments

import (
	"fmt"
	"time"

	"haxconn/internal/baselines"
	"haxconn/internal/core"
	"haxconn/internal/perf"
	"haxconn/internal/profiler"
	"haxconn/internal/schedule"
	"haxconn/internal/sim"
	"haxconn/internal/soc"
)

// Fig1Result reproduces the motivating case study (Fig. 1): VGG-19 and
// ResNet101 on Xavier under three execution regimes. Paper values: 11.3,
// 10.6, 8.7 ms.
type Fig1Result struct {
	SerialGPUMs       float64 // Case 1: both DNNs serially on the GPU
	NaiveConcurrentMs float64 // Case 2: VGG19 on GPU, ResNet101 on DLA
	HaXCoNNMs         float64 // Case 3: contention-aware layer-level mapping
	Schedule          string
}

// Fig1 runs the case study.
func Fig1() (*Fig1Result, error) {
	p, _ := soc.PlatformByName("Xavier")
	cmp, err := core.Compare(core.Request{
		Platform:  p,
		Networks:  []string{"VGG19", "ResNet101"},
		Objective: schedule.MinMaxLatency,
	})
	if err != nil {
		return nil, err
	}
	return &Fig1Result{
		SerialGPUMs:       cmp.Baselines["GPU-only"].MeasuredMs,
		NaiveConcurrentMs: cmp.Baselines["GPU&DSA"].MeasuredMs,
		HaXCoNNMs:         cmp.HaXCoNN.MeasuredMs,
		Schedule:          cmp.HaXCoNN.Description,
	}, nil
}

// Fig3Point is one bar of Fig. 3: EMC utilization of a conv microbenchmark
// on the GPU and the DLA.
type Fig3Point struct {
	Name   string
	GPUPct float64
	DLAPct float64
}

// Fig3 profiles the 25-point conv grid on Orin.
func Fig3() []Fig3Point {
	p, _ := soc.PlatformByName("Orin")
	gpu, dla := p.GPU(), p.DSA()
	var pts []Fig3Point
	for _, l := range profiler.MicrobenchGrid() {
		pts = append(pts, Fig3Point{
			Name:   l.Name,
			GPUPct: perf.EMCUtilization(p, gpu, l),
			DLAPct: perf.EMCUtilization(p, dla, l),
		})
	}
	return pts
}

// Fig4Result reproduces the contention-interval illustration of Fig. 4:
// five layers from three DNNs on three accelerators, with non-uniform
// per-interval slowdowns.
type Fig4Result struct {
	Intervals []sim.Interval
	Records   []sim.TaskRecord
}

// Fig4 runs the synthetic three-accelerator workload. The platform is a
// hypothetical SoC (the figure is an illustration, not a measurement) with
// three identical DSAs behind one EMC.
func Fig4() (*Fig4Result, error) {
	p := &soc.Platform{
		Name:         "Hypo3",
		EMCBandwidth: 100,
		SatFrac:      0.7,
	}
	for i := 0; i < 3; i++ {
		p.Accels = append(p.Accels, soc.Accelerator{
			Name: fmt.Sprintf("DSA%d", i+1), Kind: soc.GPU,
			PeakGFLOPS: 1000, EffMin: 0.1, EffMax: 0.6, EffHalfFLOPs: 1e8,
			FCFactor: 0.5, DWFactor: 0.5, MaxBW: 60, WeightStream: 0.2, TrafficAmp: 1,
			TransitionFixedMs: 0.02, FlushGBps: 10, ReformatGBps: 10,
		})
	}
	sat := p.SatBW()
	w := sim.Workload{Streams: []sim.Stream{
		{Name: "DNN1", Tasks: []sim.Task{
			{Label: "L11", Accel: 0, BaseMs: 4, DemandGBps: 0.5 * sat, MemIntensity: 0.8},
		}},
		{Name: "DNN2", Tasks: []sim.Task{
			{Label: "L21", Accel: 1, BaseMs: 2, DemandGBps: 0.6 * sat, MemIntensity: 0.9},
			{Label: "L22", Accel: 1, BaseMs: 3, DemandGBps: 0.3 * sat, MemIntensity: 0.5},
		}},
		{Name: "DNN3", Tasks: []sim.Task{
			{Label: "L31", Accel: 2, BaseMs: 3, DemandGBps: 0.4 * sat, MemIntensity: 0.7},
		}},
	}}
	res, err := sim.Run(p, w, sim.GroundTruth{SatBW: sat})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Intervals: res.Intervals, Records: res.Records}, nil
}

// Fig5Row is one experiment of Scenario 1 (Fig. 5): two instances of the
// same DNN on Orin, throughput in FPS.
type Fig5Row struct {
	Network  string
	GPUOnly  float64
	NaiveFPS float64
	MensaFPS float64
	HaXFPS   float64
	ImprPct  float64 // over the best baseline
	Schedule string
}

// Fig5Networks are the five DNNs of the Scenario 1 figure.
var Fig5Networks = []string{"GoogleNet", "ResNet101", "Inception", "VGG19", "ResNet152"}

// Fig5 runs Scenario 1 for each network.
func Fig5() ([]Fig5Row, error) {
	p, _ := soc.PlatformByName("Orin")
	var rows []Fig5Row
	for _, name := range Fig5Networks {
		cmp, err := core.Compare(core.Request{
			Platform:  p,
			Networks:  []string{name, name},
			Objective: schedule.MaxThroughput,
		})
		if err != nil {
			return nil, err
		}
		row := Fig5Row{
			Network:  name,
			GPUOnly:  cmp.Baselines["GPU-only"].FPS,
			NaiveFPS: cmp.Baselines["GPU&DSA"].FPS,
			MensaFPS: cmp.Baselines["Mensa"].FPS,
			HaXFPS:   cmp.HaXCoNN.FPS,
			Schedule: cmp.HaXCoNN.Description,
		}
		best := row.GPUOnly
		for _, v := range []float64{row.NaiveFPS, row.MensaFPS} {
			if v > best {
				best = v
			}
		}
		if best > 0 {
			row.ImprPct = 100 * (row.HaXFPS/best - 1)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Row is one bar pair of Fig. 6: the slowdown GoogleNet-on-GPU suffers
// while a co-runner occupies the DLA, under the naive placement and under
// the HaX-CoNN schedule.
type Fig6Row struct {
	CoRunner      string
	NaiveSlowdown float64
	HaXSlowdown   float64
}

// Fig6CoRunners are the co-running DNNs of the figure.
var Fig6CoRunners = []string{"CaffeNet", "DenseNet", "Inception", "ResNet101", "ResNet152", "VGG19"}

// Fig6 measures GoogleNet's contention slowdown on Xavier: the
// duration-weighted average slowdown of its tasks (actual over standalone
// time, straight from the simulator's contention intervals), excluding
// queueing effects — the quantity the paper's figure plots relative to an
// isolated GPU run.
func Fig6() ([]Fig6Row, error) {
	p, _ := soc.PlatformByName("Xavier")
	gt := sim.GroundTruth{SatBW: p.SatBW()}
	var rows []Fig6Row
	for _, co := range Fig6CoRunners {
		cmp, err := core.Compare(core.Request{
			Platform:  p,
			Networks:  []string{"GoogleNet", co},
			Objective: schedule.MinMaxLatency,
		})
		if err != nil {
			return nil, err
		}
		prob, pr := cmp.HaXCoNN.Problem, cmp.HaXCoNN.Profile
		slow := func(s *schedule.Schedule) (float64, error) {
			ev, err := schedule.Evaluate(prob, pr, s, gt)
			if err != nil {
				return 0, err
			}
			var actual, base float64
			for _, rec := range ev.Result.Records {
				if rec.Stream != 0 || rec.Slowdown <= 0 {
					continue
				}
				d := rec.EndMs - rec.StartMs
				actual += d
				base += d / rec.Slowdown
			}
			if base <= 0 {
				return 1, nil
			}
			return actual / base, nil
		}
		naive, err := slow(baselines.NaiveConcurrent(pr))
		if err != nil {
			return nil, err
		}
		hax, err := slow(cmp.HaXCoNN.Schedule)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{CoRunner: co, NaiveSlowdown: naive, HaXSlowdown: hax})
	}
	return rows, nil
}

// Fig7Phase is one 10-second phase of the dynamic experiment (Fig. 7): a
// DNN pair whose schedule D-HaX-CoNN improves on-line.
type Fig7Phase struct {
	Networks   []string
	After      [][]int
	BaselineMs float64 // naive initial schedule, deployed at t=0
	OptimalMs  float64 // oracle: full solve
	// Updates are the measured latencies of each incumbent the runtime
	// deploys, with the solver time at which it became available.
	Updates []Fig7Update
}

// Fig7Update is one deployed schedule improvement.
type Fig7Update struct {
	SolverTime time.Duration
	LatencyMs  float64
}

// Fig7 runs the three phases of the dynamic scenario (the DNN pairs of
// experiments 2, 5 and 1, in that order, as in the paper).
func Fig7() ([]Fig7Phase, error) {
	p, _ := soc.PlatformByName("Xavier")
	defs := []struct {
		nets  []string
		after [][]int
	}{
		{[]string{"ResNet152", "Inception"}, nil},
		{[]string{"GoogleNet", "ResNet152", "FCN-ResNet18"}, [][]int{nil, {0}, nil}},
		{[]string{"VGG19", "ResNet152"}, nil},
	}
	var phases []Fig7Phase
	for _, d := range defs {
		any, prob, pr, err := core.PlanDynamic(core.Request{
			Platform:  p,
			Networks:  d.nets,
			After:     d.after,
			Objective: schedule.MinMaxLatency,
		})
		if err != nil {
			return nil, err
		}
		phase := Fig7Phase{Networks: d.nets, After: d.after}
		naive, err := core.Measure(prob, pr, baselines.NaiveConcurrent(pr))
		if err != nil {
			return nil, err
		}
		phase.BaselineMs = naive.MeasuredMs
		final, err := core.Measure(prob, pr, any.Best)
		if err != nil {
			return nil, err
		}
		phase.OptimalMs = final.MeasuredMs
		for _, inc := range any.History {
			m, err := core.Measure(prob, pr, inc.Schedule)
			if err != nil {
				return nil, err
			}
			phase.Updates = append(phase.Updates, Fig7Update{SolverTime: inc.Elapsed, LatencyMs: m.MeasuredMs})
		}
		phases = append(phases, phase)
	}
	return phases, nil
}
