package experiments

import "testing"

func TestQoSMission(t *testing.T) {
	// 8 ms camera period with a 12 ms deadline: HaX-CoNN schedules fit,
	// GPU-only serialization of two DNNs often does not.
	r, err := QoSMission(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.HaX.Frames != 90 || r.GPUOnly.Frames != 90 {
		t.Fatalf("frames: hax %d gpu %d", r.HaX.Frames, r.GPUOnly.Frames)
	}
	if r.HaX.MeanMs > r.GPUOnly.MeanMs+1e-9 {
		t.Errorf("HaX mean latency %.2f above GPU-only %.2f", r.HaX.MeanMs, r.GPUOnly.MeanMs)
	}
	if r.HaX.MissRate > r.GPUOnly.MissRate+1e-9 {
		t.Errorf("HaX miss rate %.2f above GPU-only %.2f", r.HaX.MissRate, r.GPUOnly.MissRate)
	}
	if r.HaX.ThroughputFPS <= 0 {
		t.Error("no throughput recorded")
	}
}

func TestEnergyPareto(t *testing.T) {
	r, err := EnergyPareto()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Front) < 2 {
		t.Fatalf("frontier has %d points", len(r.Front))
	}
	if r.Fastest.LatencyMs >= r.Frugalest.LatencyMs {
		t.Errorf("fastest %.2f ms not faster than frugalest %.2f ms", r.Fastest.LatencyMs, r.Frugalest.LatencyMs)
	}
	if r.Fastest.EnergyMJ <= r.Frugalest.EnergyMJ {
		t.Errorf("fastest energy %.2f mJ not above frugalest %.2f mJ", r.Fastest.EnergyMJ, r.Frugalest.EnergyMJ)
	}
	if r.Budgeted.LatencyMs > r.Fastest.LatencyMs*1.2+1e-9 {
		t.Errorf("budgeted point %.2f ms violates the 1.2x budget of %.2f ms", r.Budgeted.LatencyMs, r.Fastest.LatencyMs)
	}
	if r.Budgeted.EnergyMJ > r.Fastest.EnergyMJ+1e-9 {
		t.Errorf("budgeted energy %.2f mJ above the fastest point's %.2f mJ", r.Budgeted.EnergyMJ, r.Fastest.EnergyMJ)
	}
}

func TestAblationLocalSearch(t *testing.T) {
	hc, err := AblationLocalSearch("Xavier")
	if err != nil {
		t.Fatal(err)
	}
	if hc.ExactMs <= 0 || hc.HeuristicMs <= 0 {
		t.Fatalf("bad measurements %+v", hc)
	}
	// The heuristic can match but should not beat the exact engine by more
	// than model noise.
	if hc.GapPct < -3 {
		t.Errorf("heuristic measured %.1f%% better than the optimum — bound bug?", -hc.GapPct)
	}
}

func TestMeasureQueueing(t *testing.T) {
	qa, err := MeasureQueueing("Xavier")
	if err != nil {
		t.Fatal(err)
	}
	if len(qa.QueueingMs) != 6 {
		t.Fatalf("%d schedulers measured", len(qa.QueueingMs))
	}
	// GPU-only serializes everything: it must queue more than HaX-CoNN.
	if qa.QueueingMs["GPU-only"] <= qa.QueueingMs["HaX-CoNN"] {
		t.Errorf("GPU-only queueing %.2f not above HaX-CoNN %.2f",
			qa.QueueingMs["GPU-only"], qa.QueueingMs["HaX-CoNN"])
	}
	for name, q := range qa.QueueingMs {
		if q < 0 {
			t.Errorf("%s: negative queueing %g", name, q)
		}
	}
}
