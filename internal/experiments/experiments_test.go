package experiments

import (
	"strings"
	"testing"
)

func TestFig1Shape(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// The case-study ordering of the paper: layer-level contention-aware
	// mapping beats both naive regimes.
	if r.HaXCoNNMs >= r.SerialGPUMs {
		t.Errorf("HaX-CoNN (%.2f) should beat serial GPU (%.2f)", r.HaXCoNNMs, r.SerialGPUMs)
	}
	if out := FormatFig1(r); !strings.Contains(out, "Case 3") {
		t.Error("formatter output incomplete")
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) < 8 {
		t.Fatalf("%d rows", len(rows))
	}
	if out := FormatTable2(rows); !strings.Contains(out, "GoogleNet layer groups") {
		t.Error("formatter output incomplete")
	}
}

func TestFig3Shape(t *testing.T) {
	pts := Fig3()
	if len(pts) != 25 {
		t.Fatalf("%d points, want 25", len(pts))
	}
	// The paper's observation: GPU and DLA utilizations are correlated and
	// both positive.
	for _, pt := range pts {
		if pt.GPUPct <= 0 || pt.DLAPct <= 0 {
			t.Errorf("%s: non-positive utilization", pt.Name)
		}
	}
	if out := FormatFig3(pts); !strings.Contains(out, "i5_f5") {
		t.Error("formatter output incomplete")
	}
}

func TestFig4NonUniformSlowdowns(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Intervals) < 3 {
		t.Fatalf("expected several contention intervals, got %d", len(r.Intervals))
	}
	if len(r.Records) != 4 {
		t.Fatalf("expected 4 task records, got %d", len(r.Records))
	}
	var anySlow bool
	for _, rec := range r.Records {
		if rec.Slowdown > 1.01 {
			anySlow = true
		}
	}
	if !anySlow {
		t.Error("no task experienced contention slowdown")
	}
	if out := FormatFig4(r); !strings.Contains(out, "L11") {
		t.Error("formatter output incomplete")
	}
}

func TestTable5Shape(t *testing.T) {
	rows := Table5()
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.OrinGPUMs <= 0 || r.OrinDLAMs <= r.OrinGPUMs {
			t.Errorf("%s: Orin GPU %.2f / DLA %.2f (DLA must be slower)", r.Network, r.OrinGPUMs, r.OrinDLAMs)
		}
		if r.XavierGPUMs <= r.OrinGPUMs {
			t.Errorf("%s: Xavier GPU (%.2f) must be slower than Orin GPU (%.2f)", r.Network, r.XavierGPUMs, r.OrinGPUMs)
		}
	}
	if out := FormatTable5(rows); !strings.Contains(out, "VGG19") {
		t.Error("formatter output incomplete")
	}
}

func TestRunT6SingleExperiment(t *testing.T) {
	defs := Table6Defs()
	if len(defs) != 10 {
		t.Fatalf("%d definitions, want 10", len(defs))
	}
	row, err := RunT6(defs[0]) // exp 1: Xavier VGG19+ResNet152
	if err != nil {
		t.Fatal(err)
	}
	if row.ImprLat < 0.05 {
		t.Errorf("exp 1 improvement %.1f%%, expected a clear win (paper: 23%%)", 100*row.ImprLat)
	}
	if row.HaX.LatencyMs <= 0 {
		t.Error("no measured latency")
	}
	if len(row.Baselines) != 5 {
		t.Errorf("%d baselines", len(row.Baselines))
	}
}

func TestRunT6Exp4NoRegressions(t *testing.T) {
	// Experiment 4 is the paper's fallback case: HaX-CoNN identifies that
	// layer-level mapping does not help and must not be worse.
	row, err := RunT6(Table6Defs()[3])
	if err != nil {
		t.Fatal(err)
	}
	if row.ImprFPS < -0.01 {
		t.Errorf("exp 4: HaX-CoNN regressed by %.1f%%", -100*row.ImprFPS)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig6CoRunners) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.NaiveSlowdown < 1 {
			t.Errorf("%s: naive slowdown %.2f < 1", r.CoRunner, r.NaiveSlowdown)
		}
		// HaX-CoNN significantly reduces the contention slowdown.
		if r.HaXSlowdown > r.NaiveSlowdown*1.05 {
			t.Errorf("%s: HaX slowdown %.2f above naive %.2f", r.CoRunner, r.HaXSlowdown, r.NaiveSlowdown)
		}
	}
	if out := FormatFig6(rows); !strings.Contains(out, "VGG19") {
		t.Error("formatter output incomplete")
	}
}

func TestTable7OverheadSmall(t *testing.T) {
	rows, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table7Networks) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.OverheadPc < 0 {
			t.Errorf("%s: negative overhead %.2f%%", r.Network, r.OverheadPc)
		}
		// Paper: the solver slows concurrent DNN execution by no more
		// than 2%; allow a little headroom for the simulator.
		if r.OverheadPc > 4 {
			t.Errorf("%s: overhead %.2f%% far above the paper's <2%%", r.Network, r.OverheadPc)
		}
	}
	if out := FormatTable7(rows); !strings.Contains(out, "MobileNet") {
		t.Error("formatter output incomplete")
	}
}

func TestBalanceIterations(t *testing.T) {
	cases := []struct {
		l1, l2 float64
		w1, w2 int
	}{
		{1, 1, 1, 1},
		{1, 3, 3, 1}, // net1 is 3x faster: run it 3x
		{3, 1, 1, 3},
		{1, 100, 8, 1}, // clamped
		{0, 5, 1, 1},   // degenerate
	}
	for _, c := range cases {
		g1, g2 := balanceIterations(c.l1, c.l2)
		if g1 != c.w1 || g2 != c.w2 {
			t.Errorf("balance(%g,%g) = (%d,%d), want (%d,%d)", c.l1, c.l2, g1, g2, c.w1, c.w2)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	nc, err := AblationNoContention("Xavier")
	if err != nil {
		t.Fatal(err)
	}
	if nc.PenaltyPct < -2 {
		t.Errorf("contention-unaware variant measured better by %.1f%% — model adds no value?", -nc.PenaltyPct)
	}
	nt, err := AblationNoTransitionCost("Xavier")
	if err != nil {
		t.Fatal(err)
	}
	if nt.PenaltyPct < -2 {
		t.Errorf("transition-blind variant measured better by %.1f%%", -nt.PenaltyPct)
	}
	pts, err := AblationGranularity("Xavier", []int{2, 6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d granularity points", len(pts))
	}
	// Finer granularity never hurts the optimum (more candidate cuts).
	if pts[2].MeasuredMs > pts[0].MeasuredMs*1.05 {
		t.Errorf("12 groups (%.2f ms) much worse than 2 groups (%.2f ms)", pts[2].MeasuredMs, pts[0].MeasuredMs)
	}
}

func TestAblationSolversAgree(t *testing.T) {
	sc, err := AblationSolvers("Orin")
	if err != nil {
		t.Fatal(err)
	}
	diff := sc.MeasuredBB - sc.MeasuredSAT
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-6 {
		t.Errorf("solver engines disagree: BB %.4f ms vs SAT %.4f ms", sc.MeasuredBB, sc.MeasuredSAT)
	}
	if sc.SATModels == 0 {
		t.Error("SAT engine enumerated nothing")
	}
}

func TestContentionReduction(t *testing.T) {
	r, err := MeasureContentionReduction("Xavier")
	if err != nil {
		t.Fatal(err)
	}
	if r.NaiveOversatMs <= 0 {
		t.Skip("naive schedule does not oversaturate on this calibration")
	}
	if r.ReductionPct < 0 {
		t.Errorf("HaX-CoNN increased oversaturated time by %.1f%%", -r.ReductionPct)
	}
}

func TestFig7Convergence(t *testing.T) {
	phases, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("%d phases, want 3", len(phases))
	}
	for i, ph := range phases {
		if len(ph.Updates) == 0 {
			t.Fatalf("phase %d: no schedule updates", i)
		}
		last := ph.Updates[len(ph.Updates)-1]
		if last.LatencyMs > ph.OptimalMs+1e-6 {
			t.Errorf("phase %d: final update %.2f ms above optimal %.2f ms", i, last.LatencyMs, ph.OptimalMs)
		}
		if ph.OptimalMs > ph.BaselineMs {
			t.Errorf("phase %d: optimal %.2f ms worse than baseline %.2f ms", i, ph.OptimalMs, ph.BaselineMs)
		}
	}
	if out := FormatFig7(phases); !strings.Contains(out, "phase 1") {
		t.Error("formatter output incomplete")
	}
}
