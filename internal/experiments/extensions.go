package experiments

import (
	"haxconn/internal/autoloop"
	"haxconn/internal/energy"
	"haxconn/internal/nn"
	"haxconn/internal/profiler"
	"haxconn/internal/schedule"
	"haxconn/internal/sim"
	"haxconn/internal/soc"
)

// QoSResult compares the autonomous loop's QoS under HaX-CoNN schedules
// against the GPU-only regime — an extension experiment quantifying the
// "safety and QoS requirements" the paper's introduction motivates.
type QoSResult struct {
	PeriodMs, DeadlineMs float64
	HaX, GPUOnly         *autoloop.Stats
}

func qosModes() []autoloop.Mode {
	return []autoloop.Mode{
		{Name: "discovery", Networks: []string{"ResNet152", "Inception"}, Objective: schedule.MinMaxLatency},
		{Name: "tracking", Networks: []string{"GoogleNet", "ResNet101"}, Objective: schedule.MinMaxLatency},
	}
}

func qosMission() []autoloop.Phase {
	return []autoloop.Phase{
		{Mode: "discovery", Frames: 30},
		{Mode: "tracking", Frames: 30},
		{Mode: "discovery", Frames: 30},
	}
}

// QoSMission runs a three-phase mission (discovery/tracking/discovery,
// 30 frames each) on Orin at the given camera period and deadline, once
// with HaX-CoNN static optimal schedules and once with everything
// serialized on the GPU.
func QoSMission(periodMs, deadlineMs float64) (*QoSResult, error) {
	l, err := autoloop.New(autoloop.Config{
		Platform:   soc.Orin(),
		Modes:      qosModes(),
		PeriodMs:   periodMs,
		DeadlineMs: deadlineMs,
	})
	if err != nil {
		return nil, err
	}
	_, hax, err := l.Run(qosMission())
	if err != nil {
		return nil, err
	}
	gpu, err := gpuOnlyMissionStats(periodMs, deadlineMs)
	if err != nil {
		return nil, err
	}
	return &QoSResult{PeriodMs: periodMs, DeadlineMs: deadlineMs, HaX: hax, GPUOnly: gpu}, nil
}

// gpuOnlyMissionStats replays the mission with every network of every
// mode serialized on the GPU, through the same arrival process.
func gpuOnlyMissionStats(periodMs, deadlineMs float64) (*autoloop.Stats, error) {
	p := soc.Orin()
	lat := map[string]float64{}
	for _, m := range qosModes() {
		prob := &schedule.Problem{Platform: p}
		for _, n := range m.Networks {
			prob.Items = append(prob.Items, schedule.Item{Net: nn.MustByName(n)})
		}
		pr, err := profiler.Characterize(prob, profiler.Options{})
		if err != nil {
			return nil, err
		}
		s := schedule.Uniform(pr, p.AccelIndex("GPU"))
		ev, err := schedule.Evaluate(prob, pr, s, sim.GroundTruth{SatBW: p.SatBW()})
		if err != nil {
			return nil, err
		}
		lat[m.Name] = ev.MakespanMs
	}
	var (
		now    float64
		frames int
		sum    float64
		max    float64
		misses int
	)
	for _, ph := range qosMission() {
		for f := 0; f < ph.Frames; f++ {
			arrival := float64(frames) * periodMs
			start := arrival
			if now > start {
				start = now
			}
			end := start + lat[ph.Mode]
			l := end - arrival
			sum += l
			if l > max {
				max = l
			}
			if deadlineMs > 0 && l > deadlineMs {
				misses++
			}
			now = end
			frames++
		}
	}
	st := &autoloop.Stats{
		Frames:              frames,
		Misses:              misses,
		MeanMs:              sum / float64(frames),
		MaxMs:               max,
		MissRate:            float64(misses) / float64(frames),
		SimulatedDurationMs: now,
	}
	if now > 0 {
		st.ThroughputFPS = 1000 * float64(frames) / now
	}
	return st, nil
}

// EnergyParetoResult is the energy extension experiment: the latency/
// energy frontier of a DNN pair plus an energy-budgeted selection.
type EnergyParetoResult struct {
	Front []energy.Eval
	// Fastest and Frugalest are the frontier endpoints.
	Fastest, Frugalest energy.Eval
	// Budgeted is the minimum-energy schedule within 1.2x of the fastest
	// latency — the AxoNN-style operating point.
	Budgeted energy.Eval
}

// EnergyPareto computes the frontier for GoogleNet+ResNet101 on Orin.
func EnergyPareto() (*EnergyParetoResult, error) {
	p := soc.Orin()
	prob := &schedule.Problem{Platform: p, Items: []schedule.Item{
		{Net: nn.MustByName("GoogleNet")},
		{Net: nn.MustByName("ResNet101")},
	}}
	pr, err := profiler.Characterize(prob, profiler.Options{})
	if err != nil {
		return nil, err
	}
	prm, err := energy.DefaultParams(p)
	if err != nil {
		return nil, err
	}
	front, err := energy.Pareto(prob, pr, prm, 1)
	if err != nil {
		return nil, err
	}
	r := &EnergyParetoResult{Front: front}
	r.Fastest = front[0]
	r.Frugalest = front[len(front)-1]
	budgeted, err := energy.MinEnergyUnderLatency(prob, pr, prm, nil, r.Fastest.LatencyMs*1.2, 1)
	if err != nil {
		return nil, err
	}
	r.Budgeted = *budgeted
	return r, nil
}
