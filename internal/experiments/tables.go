package experiments

import (
	"math"

	"haxconn/internal/core"
	"haxconn/internal/nn"
	"haxconn/internal/perf"
	"haxconn/internal/profiler"
	"haxconn/internal/schedule"
	"haxconn/internal/sim"
	"haxconn/internal/soc"
)

// Table2 reproduces the GoogleNet layer-group characterization (Table 2)
// on Xavier with ten groups.
func Table2() []profiler.Table2Row {
	p, _ := soc.PlatformByName("Xavier")
	return profiler.Table2(p, nn.MustByName("GoogleNet"), 10)
}

// T5Row is one row of Table 5: standalone runtimes on Orin and Xavier.
type T5Row struct {
	Network                  string
	OrinGPUMs, OrinDLAMs     float64
	XavierGPUMs, XavierDLAMs float64
	// Paper-reported values for comparison (0 where the paper has none).
	PaperOrinGPU, PaperOrinDLA, PaperXavierGPU, PaperXavierDLA float64
}

// paperT5 holds the published Table 5 values.
var paperT5 = map[string][4]float64{
	"CaffeNet":   {0.74, 1.79, 2.26, 5.51},
	"DenseNet":   {2.19, 3.10, 7.84, 0},
	"GoogleNet":  {0.99, 1.52, 1.98, 3.68},
	"Inc-res-v2": {3.06, 5.15, 15.12, 17.95},
	"Inception":  {2.49, 5.66, 8.31, 15.94},
	"ResNet18":   {0.41, 0.74, 1.37, 2.81},
	"ResNet50":   {0.91, 1.67, 2.88, 6.01},
	"ResNet101":  {1.56, 2.47, 5.34, 10.6},
	"ResNet152":  {2.19, 3.26, 7.7, 12.71},
	"VGG19":      {1.07, 2.93, 5.95, 19.05},
}

// Table5 measures standalone runtimes for the evaluation set.
func Table5() []T5Row {
	orin, _ := soc.PlatformByName("Orin")
	xavier, _ := soc.PlatformByName("Xavier")
	var rows []T5Row
	for _, net := range nn.EvaluationSet() {
		r := T5Row{
			Network:     net.Name,
			OrinGPUMs:   perf.NetworkLatencyMs(orin.GPU(), net),
			OrinDLAMs:   perf.NetworkLatencyMs(orin.DSA(), net),
			XavierGPUMs: perf.NetworkLatencyMs(xavier.GPU(), net),
			XavierDLAMs: perf.NetworkLatencyMs(xavier.DSA(), net),
		}
		if v, ok := paperT5[net.Name]; ok {
			r.PaperOrinGPU, r.PaperOrinDLA, r.PaperXavierGPU, r.PaperXavierDLA = v[0], v[1], v[2], v[3]
		}
		rows = append(rows, r)
	}
	return rows
}

// T7Row is one cell of Table 7: the overhead the on-line solver imposes on
// a concurrent DNN execution.
type T7Row struct {
	Network    string
	OverheadPc float64
}

// Table7Networks are the twelve networks of the overhead experiment.
var Table7Networks = []string{
	"CaffeNet", "DenseNet", "GoogleNet", "Inc-res-v2", "Inception", "MobileNet",
	"ResNet18", "ResNet50", "ResNet101", "ResNet152", "VGG16", "VGG19",
}

// SolverDemandGBps is the memory demand of the Z3-equivalent solver running
// on one CPU core (Sec. 5.3 attributes the <2% overhead to Z3's low memory
// footprint; a constraint search touches little DRAM).
const SolverDemandGBps = 1.5

// Table7 measures the solver overhead: AlexNet on the DLA plus each
// network on the GPU of Orin, with and without the solver's background
// memory demand on a CPU core.
func Table7() ([]T7Row, error) {
	p, _ := soc.PlatformByName("Orin")
	var rows []T7Row
	for _, name := range Table7Networks {
		base, err := table7Run(p, name, 0)
		if err != nil {
			return nil, err
		}
		loaded, err := table7Run(p, name, SolverDemandGBps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, T7Row{
			Network:    name,
			OverheadPc: 100 * (loaded - base) / base,
		})
	}
	return rows, nil
}

func table7Run(p *soc.Platform, gpuNet string, solverDemand float64) (float64, error) {
	prob := &schedule.Problem{Platform: p, Items: []schedule.Item{
		{Net: nn.MustByName(gpuNet)},
		{Net: nn.MustByName("AlexNet")},
	}}
	pr, err := profiler.Characterize(prob, profiler.Options{})
	if err != nil {
		return 0, err
	}
	s := schedule.Uniform(pr, p.AccelIndex("GPU"))
	dla := p.AccelIndex("DLA")
	for g := range s.Assign[1] {
		s.Assign[1][g] = dla
	}
	w := schedule.BuildSim(prob, pr, s)
	if solverDemand > 0 {
		w.Background = append(w.Background, sim.Background{Label: "z3-solver", DemandGBps: solverDemand})
	}
	res, err := sim.Run(p, w, sim.GroundTruth{SatBW: p.SatBW()})
	if err != nil {
		return 0, err
	}
	return res.MakespanMs, nil
}

// T8Cell is one lower-triangle cell of Table 8: the best baseline for a
// DNN pair and HaX-CoNN's throughput ratio over it.
type T8Cell struct {
	Net1, Net2   string
	BestBaseline string
	// Ratio is HaX-CoNN FPS / best-baseline FPS; 1.0 means HaX-CoNN fell
	// back to the baseline schedule (the paper's "x" cells).
	Ratio float64
	// Iter1/Iter2 are the balancing iteration counts (the faster DNN runs
	// more frames, Sec. 5.4).
	Iter1, Iter2 int
	Schedule     string
}

// Table8 runs the exhaustive pairwise evaluation on Orin: every pair from
// the 10-network evaluation set, iteration-balanced, throughput objective.
func Table8() ([]T8Cell, error) {
	p, _ := soc.PlatformByName("Orin")
	nets := nn.EvaluationSet()
	gpu := p.GPU()
	lat := make([]float64, len(nets))
	for i, n := range nets {
		lat[i] = perf.NetworkLatencyMs(gpu, n)
	}
	var cells []T8Cell
	for i := 0; i < len(nets); i++ {
		for j := 0; j <= i; j++ {
			it1, it2 := balanceIterations(lat[i], lat[j])
			cmp, err := core.Compare(core.Request{
				Platform:   p,
				Networks:   []string{nets[i].Name, nets[j].Name},
				Iterations: []int{it1, it2},
				Objective:  schedule.MaxThroughput,
			})
			if err != nil {
				return nil, err
			}
			name, best := cmp.BestBaseline(schedule.MaxThroughput)
			cell := T8Cell{
				Net1: nets[i].Name, Net2: nets[j].Name,
				BestBaseline: name,
				Iter1:        it1, Iter2: it2,
				Schedule: cmp.HaXCoNN.Description,
			}
			if best != nil && best.FPS > 0 {
				cell.Ratio = cmp.HaXCoNN.FPS / best.FPS
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// balanceIterations gives the faster DNN proportionally more frames so the
// concurrent durations roughly match (Sec. 5.4).
func balanceIterations(lat1, lat2 float64) (int, int) {
	if lat1 <= 0 || lat2 <= 0 {
		return 1, 1
	}
	r := lat1 / lat2
	clamp := func(x float64) int {
		n := int(math.Round(x))
		if n < 1 {
			return 1
		}
		if n > 8 {
			return 8
		}
		return n
	}
	if r >= 1 {
		return 1, clamp(r)
	}
	return clamp(1 / r), 1
}
