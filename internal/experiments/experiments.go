// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5) on the simulator substrate. Each artifact has a
// structured producer (Table6, Fig5, ...) consumed by cmd/experiments for
// text rendering and by the repository-level benchmarks.
//
// Absolute numbers come from the simulator, not silicon; the Paper* fields
// carry the published values so reports can show paper-vs-measured side by
// side (see EXPERIMENTS.md for the recorded comparison).
package experiments

import (
	"fmt"

	"haxconn/internal/core"
	"haxconn/internal/schedule"
	"haxconn/internal/soc"
)

// Metrics is one measured (latency, throughput) point.
type Metrics struct {
	LatencyMs float64
	FPS       float64
}

// T6Def defines one of the ten experiments of Table 6.
type T6Def struct {
	Exp      int
	Platform string
	Goal     schedule.Objective
	Scenario int // 2, 3 or 4
	Networks []string
	After    [][]int // scenario 4 serial dependencies
	// FrameCount=1 marks steady-state streaming pipelines (Scenario 3).
	FrameCount int
	// Paper-reported improvement over the best baseline (fractions).
	PaperImprLat, PaperImprFPS float64
}

// Table6Defs returns the paper's ten experiment definitions.
func Table6Defs() []T6Def {
	return []T6Def{
		{Exp: 1, Platform: "Xavier", Goal: schedule.MinMaxLatency, Scenario: 2,
			Networks: []string{"VGG19", "ResNet152"}, PaperImprLat: 0.23, PaperImprFPS: 0.22},
		{Exp: 2, Platform: "Xavier", Goal: schedule.MinMaxLatency, Scenario: 2,
			Networks: []string{"ResNet152", "Inception"}, PaperImprLat: 0.20, PaperImprFPS: 0.18},
		{Exp: 3, Platform: "Xavier", Goal: schedule.MaxThroughput, Scenario: 3,
			Networks: []string{"AlexNet", "ResNet101"}, FrameCount: 1, PaperImprLat: 0.26, PaperImprFPS: 0.23},
		{Exp: 4, Platform: "Xavier", Goal: schedule.MaxThroughput, Scenario: 3,
			Networks: []string{"ResNet101", "GoogleNet"}, FrameCount: 1, PaperImprLat: 0, PaperImprFPS: 0},
		{Exp: 5, Platform: "Xavier", Goal: schedule.MinMaxLatency, Scenario: 4,
			Networks: []string{"GoogleNet", "ResNet152", "FCN-ResNet18"},
			After:    [][]int{nil, {0}, nil}, PaperImprLat: 0.22, PaperImprFPS: 0.21},
		{Exp: 6, Platform: "Orin", Goal: schedule.MinMaxLatency, Scenario: 2,
			Networks: []string{"VGG19", "ResNet152"}, PaperImprLat: 0.23, PaperImprFPS: 0.22},
		{Exp: 7, Platform: "Orin", Goal: schedule.MaxThroughput, Scenario: 3,
			Networks: []string{"GoogleNet", "ResNet101"}, FrameCount: 1, PaperImprLat: 0.19, PaperImprFPS: 0.18},
		{Exp: 8, Platform: "Orin", Goal: schedule.MinMaxLatency, Scenario: 4,
			Networks: []string{"ResNet101", "GoogleNet", "Inception"},
			After:    [][]int{nil, {0}, nil}, PaperImprLat: 0.13, PaperImprFPS: 0.12},
		{Exp: 9, Platform: "SD865", Goal: schedule.MaxThroughput, Scenario: 3,
			Networks: []string{"GoogleNet", "ResNet101"}, FrameCount: 1, PaperImprLat: 0.11, PaperImprFPS: 0.10},
		{Exp: 10, Platform: "SD865", Goal: schedule.MinMaxLatency, Scenario: 2,
			Networks: []string{"Inception", "ResNet152"}, PaperImprLat: 0.15, PaperImprFPS: 0.15},
	}
}

// T6Row is one measured row of Table 6.
type T6Row struct {
	Def          T6Def
	Baselines    map[string]Metrics
	BestBaseline string
	HaX          Metrics
	Schedule     string
	ImprLat      float64 // latency reduction vs best baseline (fraction)
	ImprFPS      float64 // FPS gain vs best baseline (fraction)
	SolveMs      float64
}

// request builds the core.Request for a Table 6 definition.
func (d T6Def) request() (core.Request, error) {
	p, ok := soc.PlatformByName(d.Platform)
	if !ok {
		return core.Request{}, fmt.Errorf("experiments: unknown platform %s", d.Platform)
	}
	return core.Request{
		Platform:   p,
		Networks:   d.Networks,
		After:      d.After,
		FrameCount: d.FrameCount,
		Objective:  d.Goal,
	}, nil
}

// RunT6 executes a single Table 6 experiment.
func RunT6(d T6Def) (*T6Row, error) {
	req, err := d.request()
	if err != nil {
		return nil, err
	}
	cmp, err := core.Compare(req)
	if err != nil {
		return nil, fmt.Errorf("experiments: exp %d: %w", d.Exp, err)
	}
	row := &T6Row{Def: d, Baselines: map[string]Metrics{}}
	for name, r := range cmp.Baselines {
		row.Baselines[name] = Metrics{LatencyMs: r.MeasuredMs, FPS: r.FPS}
	}
	row.BestBaseline, _ = cmp.BestBaseline(d.Goal)
	row.HaX = Metrics{LatencyMs: cmp.HaXCoNN.MeasuredMs, FPS: cmp.HaXCoNN.FPS}
	row.Schedule = cmp.HaXCoNN.Description
	row.SolveMs = float64(cmp.HaXCoNN.SolverStats.Elapsed.Microseconds()) / 1000
	_, best := cmp.BestBaseline(d.Goal)
	if best != nil {
		if best.MeasuredMs > 0 {
			row.ImprLat = 1 - row.HaX.LatencyMs/best.MeasuredMs
		}
		if best.FPS > 0 {
			row.ImprFPS = row.HaX.FPS/best.FPS - 1
		}
	}
	return row, nil
}

// Table6 runs all ten experiments.
func Table6() ([]*T6Row, error) {
	defs := Table6Defs()
	rows := make([]*T6Row, 0, len(defs))
	for _, d := range defs {
		row, err := RunT6(d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
