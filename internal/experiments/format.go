package experiments

import (
	"fmt"
	"strings"

	"haxconn/internal/profiler"
)

// FormatFig1 renders the case study.
func FormatFig1(r *Fig1Result) string {
	var b strings.Builder
	b.WriteString("Fig. 1 — VGG-19 + ResNet101 on Xavier AGX (paper: 11.3 / 10.6 / 8.7 ms)\n")
	fmt.Fprintf(&b, "  Case 1  serial on GPU            %7.2f ms\n", r.SerialGPUMs)
	fmt.Fprintf(&b, "  Case 2  naive concurrent GPU&DLA %7.2f ms\n", r.NaiveConcurrentMs)
	fmt.Fprintf(&b, "  Case 3  HaX-CoNN layer-level     %7.2f ms\n", r.HaXCoNNMs)
	fmt.Fprintf(&b, "  schedule: %s\n", r.Schedule)
	return b.String()
}

// FormatTable2 renders the GoogleNet layer-group characterization.
func FormatTable2(rows []profiler.Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2 — GoogleNet layer groups on Xavier (E = execution, T = transition)\n")
	b.WriteString("Group      GPU(ms)  DLA(ms)  D/G   T GtoD(ms)  T DtoG(ms)  MemThr(%)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7.3f  %7.3f  %4.2f  %9.3f  %9.3f  %8.1f\n",
			r.Label, r.GPUMs, r.DLAMs, r.Ratio, r.GtoDMs, r.DtoGMs, r.MemThroughPc)
	}
	return b.String()
}

// FormatTable6 renders the ten-experiment comparison.
func FormatTable6(rows []*T6Row) string {
	var b strings.Builder
	b.WriteString("Table 6 — Scenarios 2/3/4 vs baselines (measured on the simulator)\n")
	b.WriteString("Exp Plat    Goal       Networks                                   Best-baseline       HaX-CoNN            Impr(lat/fps)  Paper\n")
	for _, r := range rows {
		base := r.Baselines[r.BestBaseline]
		fmt.Fprintf(&b, "%2d  %-7s %-10s %-42s %-8s %6.2fms %5.1f  %7.2fms %6.1f  %5.1f%% /%5.1f%%  %2.0f%% /%2.0f%%\n",
			r.Def.Exp, r.Def.Platform, r.Def.Goal, strings.Join(r.Def.Networks, "+"),
			r.BestBaseline, base.LatencyMs, base.FPS,
			r.HaX.LatencyMs, r.HaX.FPS,
			100*r.ImprLat, 100*r.ImprFPS,
			100*r.Def.PaperImprLat, 100*r.Def.PaperImprFPS)
	}
	return b.String()
}

// FormatTable5 renders standalone runtimes with paper references.
func FormatTable5(rows []T5Row) string {
	var b strings.Builder
	b.WriteString("Table 5 — standalone runtimes, measured (paper) in ms\n")
	b.WriteString("Network      Orin GPU          Orin DLA          Xavier GPU        Xavier DLA\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6.2f (%5.2f)    %6.2f (%5.2f)    %6.2f (%5.2f)    %6.2f (%5.2f)\n",
			r.Network, r.OrinGPUMs, r.PaperOrinGPU, r.OrinDLAMs, r.PaperOrinDLA,
			r.XavierGPUMs, r.PaperXavierGPU, r.XavierDLAMs, r.PaperXavierDLA)
	}
	return b.String()
}

// FormatFig5 renders the Scenario 1 throughput comparison.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Fig. 5 — Scenario 1: two instances of the same DNN on Orin (FPS)\n")
	b.WriteString("Network      GPU-only  GPU&DLA   Mensa     HaX-CoNN  Improvement\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.1f %8.1f %8.1f %9.1f   %+5.1f%%\n",
			r.Network, r.GPUOnly, r.NaiveFPS, r.MensaFPS, r.HaXFPS, r.ImprPct)
	}
	return b.String()
}

// FormatFig6 renders the contention slowdown comparison.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — slowdown of GoogleNet on Xavier GPU with a co-runner on DLA\n")
	b.WriteString("Co-runner    naive     HaX-CoNN\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6.2fx   %6.2fx\n", r.CoRunner, r.NaiveSlowdown, r.HaXSlowdown)
	}
	return b.String()
}

// FormatFig7 renders the dynamic convergence timeline.
func FormatFig7(phases []Fig7Phase) string {
	var b strings.Builder
	b.WriteString("Fig. 7 — D-HaX-CoNN dynamic schedule improvement (Xavier)\n")
	for i, ph := range phases {
		fmt.Fprintf(&b, "phase %d: %s  baseline %.2f ms -> optimal %.2f ms\n",
			i+1, strings.Join(ph.Networks, "+"), ph.BaselineMs, ph.OptimalMs)
		for _, u := range ph.Updates {
			fmt.Fprintf(&b, "  after %8v solver time: %.2f ms\n", u.SolverTime, u.LatencyMs)
		}
	}
	return b.String()
}

// FormatTable7 renders the solver overhead table.
func FormatTable7(rows []T7Row) string {
	var b strings.Builder
	b.WriteString("Table 7 — on-line solver overhead on concurrent DNN execution (Orin, paper <2%)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5.2f%%\n", r.Network, r.OverheadPc)
	}
	return b.String()
}

// FormatTable8 renders the exhaustive pair matrix.
func FormatTable8(cells []T8Cell) string {
	var b strings.Builder
	b.WriteString("Table 8 — all DNN pairs on Orin: best baseline / HaX-CoNN FPS ratio\n")
	for _, c := range cells {
		mark := fmt.Sprintf("%.2f", c.Ratio)
		if c.Ratio <= 1.0001 {
			mark = "x   " // HaX-CoNN fell back to the baseline schedule
		}
		fmt.Fprintf(&b, "%-12s x %-12s  %-8s %s  (iters %d:%d)\n",
			c.Net1, c.Net2, c.BestBaseline, mark, c.Iter1, c.Iter2)
	}
	return b.String()
}

// FormatFig3 renders the EMC utilization grid.
func FormatFig3(pts []Fig3Point) string {
	var b strings.Builder
	b.WriteString("Fig. 3 — EMC utilization of conv layers on Orin (%)\n")
	b.WriteString("bench     GPU     DLA\n")
	for _, pt := range pts {
		fmt.Fprintf(&b, "%-8s %6.1f  %6.1f\n", pt.Name, pt.GPUPct, pt.DLAPct)
	}
	return b.String()
}

// FormatFig4 renders the contention-interval timeline.
func FormatFig4(r *Fig4Result) string {
	var b strings.Builder
	b.WriteString("Fig. 4 — contention intervals of five layers on three accelerators\n")
	for _, iv := range r.Intervals {
		fmt.Fprintf(&b, "  [%6.2f, %6.2f] ms  demand %5.1f GB/s  active: %s\n",
			iv.StartMs, iv.EndMs, iv.TotalDemand, strings.Join(iv.Active, ", "))
	}
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "  %-4s slowdown %.2fx (%.2f..%.2f ms)\n", rec.Label, rec.Slowdown, rec.StartMs, rec.EndMs)
	}
	return b.String()
}

// FormatQoS renders the autonomous-loop QoS comparison.
func FormatQoS(r *QoSResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "QoS mission on Orin — period %.1f ms, deadline %.1f ms\n", r.PeriodMs, r.DeadlineMs)
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %10s %8s\n", "scheduler", "mean", "p99/max", "misses", "miss-rate", "fps")
	fmt.Fprintf(&b, "%-10s %6.2fms %6.2fms %8d %9.1f%% %8.1f\n",
		"HaX-CoNN", r.HaX.MeanMs, r.HaX.MaxMs, r.HaX.Misses, 100*r.HaX.MissRate, r.HaX.ThroughputFPS)
	fmt.Fprintf(&b, "%-10s %6.2fms %6.2fms %8d %9.1f%% %8.1f\n",
		"GPU-only", r.GPUOnly.MeanMs, r.GPUOnly.MaxMs, r.GPUOnly.Misses, 100*r.GPUOnly.MissRate, r.GPUOnly.ThroughputFPS)
	return b.String()
}

// FormatEnergyPareto renders the latency/energy frontier.
func FormatEnergyPareto(r *EnergyParetoResult) string {
	var b strings.Builder
	b.WriteString("Energy/latency Pareto frontier — GoogleNet + ResNet101 on Orin\n")
	b.WriteString("  latency(ms)  energy(mJ)  EDP\n")
	for _, pt := range r.Front {
		fmt.Fprintf(&b, "  %10.2f  %10.1f  %8.0f\n", pt.LatencyMs, pt.EnergyMJ, pt.EDP)
	}
	fmt.Fprintf(&b, "budgeted (<=1.2x fastest): %.2f ms at %.1f mJ (fastest: %.2f ms at %.1f mJ)\n",
		r.Budgeted.LatencyMs, r.Budgeted.EnergyMJ, r.Fastest.LatencyMs, r.Fastest.EnergyMJ)
	return b.String()
}
