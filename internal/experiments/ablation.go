package experiments

import (
	"time"

	"haxconn/internal/baselines"
	"haxconn/internal/contention"
	"haxconn/internal/core"
	"haxconn/internal/profiler"
	"haxconn/internal/schedule"
	"haxconn/internal/sim"
	"haxconn/internal/soc"
	"haxconn/internal/solver"
)

// AblationResult compares a design variant against the full system on the
// same workload, both measured on ground truth.
type AblationResult struct {
	Name      string
	FullMs    float64
	VariantMs float64
	// PenaltyPct is how much slower the variant's chosen schedule runs
	// (positive = the ablated component was pulling its weight).
	PenaltyPct float64
}

// ablationWorkload is the instance the ablations run on: the VGG19 +
// ResNet152 latency scenario of experiments 1/6.
func ablationWorkload(plat string) core.Request {
	p, _ := soc.PlatformByName(plat)
	return core.Request{
		Platform:  p,
		Networks:  []string{"VGG19", "ResNet152"},
		Objective: schedule.MinMaxLatency,
	}
}

// AblationNoContention solves with the contention model disabled and
// measures the chosen schedule on ground truth (the "what if HaX-CoNN
// ignored shared memory like Herald/H2H" experiment).
func AblationNoContention(plat string) (*AblationResult, error) {
	req := ablationWorkload(plat)
	full, err := core.Plan(req)
	if err != nil {
		return nil, err
	}
	req.ContentionModel = contention.None{}
	variant, err := core.Plan(req)
	if err != nil {
		return nil, err
	}
	return ablation("no-contention-model", full.MeasuredMs, variant.MeasuredMs), nil
}

// AblationNoTransitionCost zeroes the transition-cost tables during
// solving, then measures the chosen schedule with real transition costs.
func AblationNoTransitionCost(plat string) (*AblationResult, error) {
	req := ablationWorkload(plat)
	full, err := core.Plan(req)
	if err != nil {
		return nil, err
	}
	// Re-solve with a transition-blind profile.
	prob := full.Problem
	pr, err := profiler.Characterize(prob, profiler.Options{})
	if err != nil {
		return nil, err
	}
	blind := *pr
	blind.TransOutMs = zeroed(pr.TransOutMs)
	blind.TransInMs = zeroed(pr.TransInMs)
	model, err := core.Model(req)
	if err != nil {
		return nil, err
	}
	s, _, _, err := solver.OptimizeBB(prob, &blind, solver.Config{
		Model: model,
		Seeds: []*schedule.Schedule{baselines.GPUOnly(&blind)},
	})
	if err != nil {
		return nil, err
	}
	// Measure with the *real* profile: transitions now cost what they cost.
	m, err := core.Measure(prob, pr, s)
	if err != nil {
		return nil, err
	}
	return ablation("no-transition-cost", full.MeasuredMs, m.MeasuredMs), nil
}

// AblationGranularityPoint is one point of the group-count sweep.
type AblationGranularityPoint struct {
	MaxGroups  int
	MeasuredMs float64
	SolveMs    float64
}

// AblationGranularity sweeps the layer-group cap: coarser groups shrink
// the search space but forfeit transition points.
func AblationGranularity(plat string, caps []int) ([]AblationGranularityPoint, error) {
	var pts []AblationGranularityPoint
	for _, c := range caps {
		req := ablationWorkload(plat)
		req.MaxGroups = c
		res, err := core.Plan(req)
		if err != nil {
			return nil, err
		}
		pts = append(pts, AblationGranularityPoint{
			MaxGroups:  c,
			MeasuredMs: res.MeasuredMs,
			SolveMs:    float64(res.SolverStats.Elapsed.Microseconds()) / 1000,
		})
	}
	return pts, nil
}

// SolverComparison reports both engines on the same instance.
type SolverComparison struct {
	BBMs, SATMs             float64 // solve time
	BBCost, SATCost         float64 // identical when both complete
	BBEvals, SATModels      int
	MeasuredBB, MeasuredSAT float64
}

// AblationSolvers cross-checks branch & bound against SAT enumeration.
func AblationSolvers(plat string) (*SolverComparison, error) {
	req := ablationWorkload(plat)
	req.MaxGroups = 6 // keep the SAT enumeration space small
	bb, err := core.Plan(req)
	if err != nil {
		return nil, err
	}
	req.UseSAT = true
	sat, err := core.Plan(req)
	if err != nil {
		return nil, err
	}
	return &SolverComparison{
		BBMs:        ms(bb.SolverStats.Elapsed),
		SATMs:       ms(sat.SolverStats.Elapsed),
		BBCost:      bb.PredictedMs,
		SATCost:     sat.PredictedMs,
		BBEvals:     bb.SolverStats.Evals,
		SATModels:   sat.SolverStats.Nodes,
		MeasuredBB:  bb.MeasuredMs,
		MeasuredSAT: sat.MeasuredMs,
	}, nil
}

// ContentionReduction quantifies the headline "minimizes memory contention
// by up to 45%" claim: total over-saturation time (intervals whose demand
// exceeds the saturation bandwidth) under the naive schedule vs HaX-CoNN.
type ContentionReduction struct {
	NaiveOversatMs float64
	HaXOversatMs   float64
	ReductionPct   float64
}

// MeasureContentionReduction runs the VGG19+ResNet152 pair and integrates
// over-saturated interval time from the simulator timelines.
func MeasureContentionReduction(plat string) (*ContentionReduction, error) {
	req := ablationWorkload(plat)
	cmp, err := core.Compare(req)
	if err != nil {
		return nil, err
	}
	p := req.Platform
	pr := cmp.HaXCoNN.Profile
	prob := cmp.HaXCoNN.Problem
	oversat := func(s *schedule.Schedule) (float64, error) {
		gt := sim.GroundTruth{SatBW: p.SatBW()}
		ev, err := schedule.Evaluate(prob, pr, s, gt)
		if err != nil {
			return 0, err
		}
		var tot float64
		for _, iv := range ev.Result.Intervals {
			if iv.TotalDemand > p.SatBW() {
				tot += iv.EndMs - iv.StartMs
			}
		}
		return tot, nil
	}
	naive, err := oversat(baselines.NaiveConcurrent(pr))
	if err != nil {
		return nil, err
	}
	hax, err := oversat(cmp.HaXCoNN.Schedule)
	if err != nil {
		return nil, err
	}
	r := &ContentionReduction{NaiveOversatMs: naive, HaXOversatMs: hax}
	if naive > 0 {
		r.ReductionPct = 100 * (naive - hax) / naive
	}
	return r, nil
}

func zeroed(t [][][]float64) [][][]float64 {
	out := make([][][]float64, len(t))
	for i := range t {
		out[i] = make([][]float64, len(t[i]))
		for g := range t[i] {
			out[i][g] = make([]float64, len(t[i][g]))
		}
	}
	return out
}

func ablation(name string, full, variant float64) *AblationResult {
	r := &AblationResult{Name: name, FullMs: full, VariantMs: variant}
	if full > 0 {
		r.PenaltyPct = 100 * (variant - full) / full
	}
	return r
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// HeuristicComparison pits the hill-climbing heuristic against the exact
// branch & bound on the same instance — quantifying the paper's decision
// to target optimal schedules rather than heuristics.
type HeuristicComparison struct {
	ExactMs, HeuristicMs       float64 // measured on ground truth
	ExactSolveMs, HeurSolveMs  float64
	ExactEvals, HeuristicEvals int
	GapPct                     float64 // heuristic over exact, positive = worse
}

// AblationLocalSearch runs both engines on the VGG19+ResNet152 instance.
func AblationLocalSearch(plat string) (*HeuristicComparison, error) {
	req := ablationWorkload(plat)
	prob, pr, model, seeds, err := ablationSetup(req)
	if err != nil {
		return nil, err
	}
	exact, _, stE, err := solver.OptimizeBB(prob, pr, solver.Config{Model: model, Seeds: seeds})
	if err != nil {
		return nil, err
	}
	heur, _, stH, err := solver.OptimizeLocal(prob, pr, solver.Config{Model: model, Seeds: seeds}, 3, 1)
	if err != nil {
		return nil, err
	}
	mE, err := core.Measure(prob, pr, exact)
	if err != nil {
		return nil, err
	}
	mH, err := core.Measure(prob, pr, heur)
	if err != nil {
		return nil, err
	}
	hc := &HeuristicComparison{
		ExactMs: mE.MeasuredMs, HeuristicMs: mH.MeasuredMs,
		ExactSolveMs: ms(stE.Elapsed), HeurSolveMs: ms(stH.Elapsed),
		ExactEvals: stE.Evals, HeuristicEvals: stH.Evals,
	}
	if mE.MeasuredMs > 0 {
		hc.GapPct = 100 * (mH.MeasuredMs/mE.MeasuredMs - 1)
	}
	return hc, nil
}

// ablationSetup characterizes the request and prepares solver inputs.
func ablationSetup(req core.Request) (*schedule.Problem, *schedule.Profile, contention.Model, []*schedule.Schedule, error) {
	full, err := core.Plan(req)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	model, err := core.Model(req)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	seeds := []*schedule.Schedule{baselines.GPUOnly(full.Profile), baselines.NaiveConcurrent(full.Profile)}
	return full.Problem, full.Profile, model, seeds, nil
}

// QueueingAnalysis quantifies the Sec. 5.2 observation that Herald/H2H
// over-subscribe accelerators ("two layer groups ... end up waiting for
// each other ... the other accelerator is left idle"): total induced
// queueing per schedule on a representative pair.
type QueueingAnalysis struct {
	QueueingMs map[string]float64 // per scheduler
}

// MeasureQueueing runs the VGG19+ResNet152 pair on Xavier and reports the
// Eq. 9 queueing residual of every baseline and of HaX-CoNN.
func MeasureQueueing(plat string) (*QueueingAnalysis, error) {
	req := ablationWorkload(plat)
	cmp, err := core.Compare(req)
	if err != nil {
		return nil, err
	}
	prob, pr := cmp.HaXCoNN.Problem, cmp.HaXCoNN.Profile
	gt := sim.GroundTruth{SatBW: req.Platform.SatBW()}
	out := &QueueingAnalysis{QueueingMs: map[string]float64{}}
	schedules := baselines.All(pr)
	for name, s := range schedules {
		ev, err := schedule.Evaluate(prob, pr, s, gt)
		if err != nil {
			return nil, err
		}
		out.QueueingMs[name] = schedule.QueueingMs(ev)
	}
	ev, err := schedule.Evaluate(prob, pr, cmp.HaXCoNN.Schedule, gt)
	if err != nil {
		return nil, err
	}
	out.QueueingMs["HaX-CoNN"] = schedule.QueueingMs(ev)
	return out, nil
}
