package lint_test

import (
	"testing"

	"haxconn/internal/lint"
	"haxconn/internal/lint/linttest"
)

// TestWallTime proves the analyzer fires on time.Now/Since/Sleep/
// NewTicker, ignores pure duration arithmetic, and honors both the
// preceding-line and same-line //detlint:allow forms.
func TestWallTime(t *testing.T) {
	linttest.Run(t, "testdata", lint.WallTime, "walltime")
}

// TestAllowGrammar proves malformed suppressions — missing reason,
// unknown rule, no rule at all — are findings themselves and suppress
// nothing.
func TestAllowGrammar(t *testing.T) {
	linttest.Run(t, "testdata", lint.WallTime, "allowform")
}
