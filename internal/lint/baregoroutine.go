package lint

import (
	"go/ast"
)

// BareGoroutine flags every `go` statement in non-test code. Replayable
// concurrency in this repo is confined to a handful of blessed
// barrier/pool primitives — the portfolio's engine barrier, ProbeAll's
// solve pool, the beam scorer, the shard stepper — whose merge points
// are pinned to the virtual clock so results are byte-identical no
// matter how the goroutines interleave. Each of those launch sites
// carries a //detlint:allow baregoroutine annotation naming its
// synchronization discipline; an unannotated `go` is a replay hazard
// until proven otherwise.
var BareGoroutine = &Analyzer{
	Name: "baregoroutine",
	Doc: "flags go statements outside the annotated barrier/pool primitives, " +
		"where unsynchronized goroutines break deterministic replay",
	Run: runBareGoroutine,
}

func runBareGoroutine(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			p.Reportf(g.Go,
				"bare goroutine outside the blessed barrier/pool primitives (annotate //detlint:allow baregoroutine <discipline> if merge order is pinned to the virtual clock)")
			return true
		})
	}
	return nil
}
