// Package loading for detlint: `go list -json` resolves patterns to the
// module's packages, the stdlib parser and type checker do the rest.
// Dependencies — including the standard library — are type-checked from
// source through go/importer's "source" compiler, so detlint needs no
// export data, no build cache warm-up and no module dependencies.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path      string // import path
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the slice of `go list -json` output detlint reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
}

// goList resolves package patterns with the go command.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// sharedImporter type-checks imports from source and caches them across
// every analyzed package, so the stdlib closure is checked once per
// process. It satisfies both types.Importer and types.ImporterFrom.
type sharedImporter struct {
	src types.ImporterFrom
}

func newSharedImporter(fset *token.FileSet) *sharedImporter {
	return &sharedImporter{src: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)}
}

func (si *sharedImporter) Import(path string) (*types.Package, error) {
	return si.ImportFrom(path, "", 0)
}

func (si *sharedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return si.src.ImportFrom(path, dir, mode)
}

// Loader parses and type-checks packages on a shared FileSet and
// import cache.
type Loader struct {
	Fset *token.FileSet
	imp  *sharedImporter
}

func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: newSharedImporter(fset)}
}

// Load resolves the patterns relative to dir (the module root or any
// directory inside it) and returns the type-checked packages in
// go list order. Per-package type errors fail the load: an invariant
// checker has nothing sound to say about a package it cannot type.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.CgoFiles) > 0 {
			continue
		}
		files := make([]string, 0, len(lp.GoFiles))
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := l.LoadFiles(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadFiles parses and type-checks one package from an explicit file
// list (used by the vettool protocol and the fixture harness, which
// know their files without a go list walk).
func (l *Loader) LoadFiles(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
