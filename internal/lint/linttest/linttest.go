// Package linttest is detlint's analysistest: it runs an analyzer over
// fixture packages under testdata/src/<pkg> and checks the reported
// diagnostics against `// want "regexp"` comments in the fixtures,
// exactly like golang.org/x/tools/go/analysis/analysistest — including
// the suppression pass, so fixtures can prove //detlint:allow works.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"haxconn/internal/lint"
)

// wantRe matches one expectation comment: `// want "re"` or
// `// want `+"`re`"+“. Multiple wants may share a line, separated by
// further want clauses.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)(?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))*)")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// Run analyzes each fixture package dir/src/<pkg> with a and compares
// findings against the fixtures' want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	loader := lint.NewLoader()
	for _, pkg := range pkgs {
		pkgDir := filepath.Join(dir, "src", pkg)
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			t.Fatalf("read fixture dir %s: %v", pkgDir, err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(pkgDir, e.Name()))
			}
		}
		if len(files) == 0 {
			t.Fatalf("fixture package %s has no .go files", pkgDir)
		}
		loaded, err := loader.LoadFiles(pkg, pkgDir, files)
		if err != nil {
			t.Fatalf("load fixture %s: %v", pkg, err)
		}
		diags, err := lint.Run(loaded, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkg, err)
		}
		checkExpectations(t, pkg, files, diags)
	}
}

// checkExpectations matches diagnostics against want comments 1:1.
func checkExpectations(t *testing.T, pkg string, files []string, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, file := range files {
		wants = append(wants, parseWants(t, file)...)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) || w.re.MatchString(d.Rule+": "+d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", pkg, w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the expectation comments of one fixture file.
func parseWants(t *testing.T, file string) []*expectation {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, arg := range wantArgRe.FindAllString(m[1], -1) {
				pattern := arg
				if strings.HasPrefix(arg, `"`) {
					unq, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, arg, err)
					}
					pattern = unq
				} else {
					pattern = strings.Trim(arg, "`")
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, line, pattern, err)
				}
				wants = append(wants, &expectation{file: file, line: line, re: re, raw: pattern})
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	return wants
}

// Fprint renders diagnostics for debugging fixture failures.
func Fprint(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}
