package lint_test

import (
	"testing"

	"haxconn/internal/lint"
	"haxconn/internal/lint/linttest"
)

// TestBareGoroutine proves the analyzer fires on unannotated go
// statements (func literals and named calls alike) and honors the
// blessed-site annotation.
func TestBareGoroutine(t *testing.T) {
	linttest.Run(t, "testdata", lint.BareGoroutine, "baregoroutine")
}
