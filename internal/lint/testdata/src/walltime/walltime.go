// Fixture for the walltime analyzer: wall-clock reads outside the
// virtual tick clock.
package walltime

import "time"

func tick() time.Time {
	return time.Now() // want `wall-clock call time.Now`
}

func wait(d time.Duration) {
	time.Sleep(d) // want `wall-clock call time.Sleep`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock call time.Since`
}

func poll(stop chan struct{}) {
	t := time.NewTicker(time.Second) // want `wall-clock call time.NewTicker`
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}

// Pure duration arithmetic never touches the wall clock.
func pure() time.Duration {
	d, _ := time.ParseDuration("3ms")
	return d * 2
}

// Annotated solver-deadline shape: suppressed.
func deadline(start time.Time) time.Duration {
	//detlint:allow walltime wall deadline caps real CPU spend and never feeds byte-compared output
	return time.Since(start)
}

// Same-line annotation form.
func deadlineInline() time.Time {
	return time.Now() //detlint:allow walltime wall bench timestamp, reported only as *_wall metrics
}
