// Fixture for the suppression grammar itself: reason-less and
// unknown-rule directives are findings under the pseudo-rule "allow",
// and a malformed directive suppresses nothing.
package allowform

import "time"

func missingReason() time.Time {
	//detlint:allow walltime // want `detlint:allow walltime is missing its reason`
	return time.Now() // want `wall-clock call time.Now`
}

func unknownRule() time.Time {
	//detlint:allow frobnicate because reasons // want `detlint:allow names unknown rule frobnicate`
	return time.Now() // want `wall-clock call time.Now`
}

func noRule() time.Time {
	//detlint:allow // want `detlint:allow directive without a rule name`
	return time.Now() // want `wall-clock call time.Now`
}
