// Fixture for the maprange analyzer: export-path map iteration.
package maprange

import (
	"fmt"
	"io"
	"sort"
)

// Export path by name (Write*): unsorted map walk is flagged.
func WriteCounts(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration in export path WriteCounts`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// The blessed sorted-collect idiom: append keys, sort, walk sorted.
func WriteSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Collect with loop-local staging and guards, sorted after: still the
// blessed shape (mirrors Audit.Snapshot).
func SummarizeStats(m map[string]float64) []string {
	rows := make([]string, 0, len(m))
	for k, v := range m {
		row := k
		if v > 0 {
			row = fmt.Sprintf("%s=%g", k, v)
		}
		rows = append(rows, row)
	}
	sort.Strings(rows)
	return rows
}

// Collected but never sorted: flagged.
func SummarizeUnsorted(m map[string]float64) []string {
	var out []string
	for k := range m { // want `map iteration in export path SummarizeUnsorted`
		out = append(out, k)
	}
	return out
}

// Not an export path (no export name, no writer): commutative
// accumulation is out of scope for the rule.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Export path by signature: the io.Writer parameter marks it even
// though the name matches nothing.
func flush(w io.Writer, m map[string]int) {
	for k := range m { // want `map iteration in export path flush`
		fmt.Fprintln(w, k)
	}
}

// Suppressed with a reason: no finding.
func RenderArgs(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//detlint:allow maprange copied into a map rendered by encoding/json, which sorts keys
	for k, v := range m {
		out[k] = v
	}
	return out
}
