// Fixture for the maprange analyzer's package-wide scope: everything
// in report/obs/trace counts as an export path, whatever its name.
package obs

func accumulate(m map[string]int) int {
	n := 0
	for _, v := range m { // want `map iteration in export path accumulate`
		n += v
	}
	return n
}
