// Fixture for the rawrand analyzer: global and wall-seeded randomness.
package rawrand

import (
	"math/rand"
	"time"
)

func global() int {
	return rand.Intn(10) // want `global math/rand source via rand.Intn`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `global math/rand source via rand.Shuffle`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func reseed() {
	rand.Seed(42) // want `global math/rand source via rand.Seed`
}

func wallSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand.NewSource seeded from the wall clock`
}

// The blessed shape: a local generator with a configured seed.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Suppressed with a reason.
func jitter() int {
	//detlint:allow rawrand display-only jitter, excluded from summaries
	return rand.Intn(3)
}
