// Fixture for the baregoroutine analyzer: unblessed `go` statements.
package baregoroutine

func launch(ch chan int) {
	go func() { ch <- 1 }() // want `bare goroutine outside the blessed barrier/pool primitives`
}

func named(ch chan int) {
	go send(ch) // want `bare goroutine outside the blessed barrier/pool primitives`
}

func send(ch chan int) { ch <- 1 }

// Annotated launch site whose merge point is pinned to the virtual
// clock: suppressed.
func blessed(ch chan int) {
	results := make(chan int, 1)
	//detlint:allow baregoroutine worker joins a condvar barrier; merge order pinned to the virtual clock
	go func() { results <- <-ch }()
	<-results
}
