package lint_test

import (
	"testing"

	"haxconn/internal/lint"
	"haxconn/internal/lint/linttest"
)

// TestMapRange proves the analyzer fires on unsorted export-path map
// walks, stays silent on the sorted-collect idiom and on non-export
// helpers, honors suppressions, and treats the obs/report/trace
// packages as export paths wholesale.
func TestMapRange(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapRange, "maprange", "obs")
}
