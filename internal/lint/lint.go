// Analyzer, Pass and Diagnostic: the framework surface the four rule
// implementations program against. See doc.go for the rule catalogue
// and the //detlint:allow suppression convention.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a fully
// type-checked package through the Pass and reports findings; it must
// be stateless across packages so analyzers can run in any order.
type Analyzer struct {
	Name string // rule name, as used by //detlint:allow <name>
	Doc  string // one-paragraph description, shown by detlint -list
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Reportf records a finding at pos. Findings suppressed by a
// //detlint:allow comment are filtered by the runner, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file enclosing pos is a _test.go file.
// The determinism rules guard production paths; tests and benchmarks
// measure wall time and shuffle maps on purpose.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Run executes the analyzers over one loaded package, applies the
// //detlint:allow suppressions collected from the package's comments,
// and returns the surviving findings sorted by position. Malformed
// suppressions (no reason, unknown rule) are themselves reported under
// the pseudo-rule "allow", so every exception in the tree stays
// auditable.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}

	// Validate directives against the full suite, not the subset being
	// run: a -rules walltime pass must not flag a perfectly good
	// //detlint:allow baregoroutine annotation as an unknown rule.
	sup := collectSuppressions(pkg.Fset, pkg.Files, Analyzers())
	kept := diags[:0]
	for _, d := range diags {
		if sup.allows(d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = append(kept, sup.malformed...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// Analyzers returns the full detlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapRange, WallTime, RawRand, BareGoroutine}
}
