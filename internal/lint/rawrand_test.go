package lint_test

import (
	"testing"

	"haxconn/internal/lint"
	"haxconn/internal/lint/linttest"
)

// TestRawRand proves the analyzer fires on global math/rand functions
// and wall-clock-seeded sources while accepting explicitly seeded
// local generators.
func TestRawRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.RawRand, "rawrand")
}
