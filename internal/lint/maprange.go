package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapRange flags `for … range` over a map inside an export path — the
// functions that render summaries, CSV, JSON, traces or persisted
// snapshots, where Go's randomized map iteration order is the classic
// byte-determinism killer. The one blessed shape is the sorted-collect
// idiom: a loop whose only externally visible effect is appending to a
// single slice that the same function later sorts. Anything else needs
// either a rewrite over sorted keys or a //detlint:allow maprange with
// a reason (e.g. copying into a map rendered by encoding/json, which
// sorts keys itself).
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flags map iteration in export/summarize/CSV/trace paths unless keys are " +
		"collected into a slice and sorted in the same function",
	Run: runMapRange,
}

// exportPathPackages are analyzed wholesale: everything they do is
// rendering, merging or persisting observable output.
var exportPathPackages = map[string]bool{
	"report": true,
	"obs":    true,
	"trace":  true,
}

// exportFuncNames match functions in other packages that sit on an
// export path by naming convention.
var exportFuncNames = []string{
	"Write", "Export", "Render", "Marshal", "Save", "Dump",
	"CSV", "Summar", "Snapshot", "String", "Report", "Print",
}

func runMapRange(p *Pass) error {
	exportAll := exportPathPackages[p.Pkg.Name()]
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !exportAll && !isExportFunc(p, fd) {
				continue
			}
			checkMapRanges(p, fd)
		}
	}
	return nil
}

// isExportFunc reports whether fd is an export path by name or by
// signature (it takes an io.Writer-shaped parameter).
func isExportFunc(p *Pass, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	for _, pat := range exportFuncNames {
		if strings.Contains(name, pat) {
			return true
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if t := p.TypeOf(field.Type); t != nil && isWriterType(t) {
				return true
			}
		}
	}
	return false
}

// isWriterType reports whether t is io.Writer or implements it via a
// named interface embedding (the common export signatures).
func isWriterType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "Write" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		if s, ok := sig.Params().At(0).Type().(*types.Slice); ok {
			if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

func checkMapRanges(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if isSortedCollect(p, fd, rs) {
			return true
		}
		p.Reportf(rs.For,
			"map iteration in export path %s; collect keys and sort first (or annotate //detlint:allow maprange <reason>)",
			fd.Name.Name)
		return true
	})
}

// isSortedCollect recognizes the blessed loop shape: every statement in
// the body either manipulates loop-local state or appends to exactly
// one slice variable declared outside the loop, and that slice is
// passed to a sort call somewhere in the same function.
func isSortedCollect(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	locals := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			locals[p.TypesInfo.Defs[id]] = true
		}
	}
	var collected types.Object
	if !bodyOnlyCollects(p, rs.Body.List, locals, &collected) || collected == nil {
		return false
	}
	return functionSorts(p, fd, collected)
}

// bodyOnlyCollects walks the loop body, tracking loop-local
// declarations, and verifies the only escaping write is
// `X = append(X, …)` for a single outer slice X (recorded in
// *collected).
func bodyOnlyCollects(p *Pass, stmts []ast.Stmt, locals map[types.Object]bool, collected *types.Object) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return false
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					return false
				}
				for _, id := range vs.Names {
					locals[p.TypesInfo.Defs[id]] = true
				}
			}
		case *ast.AssignStmt:
			if !assignOnlyCollects(p, s, locals, collected) {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				init, ok := s.Init.(*ast.AssignStmt)
				if !ok || !assignOnlyCollects(p, init, locals, collected) {
					return false
				}
			}
			if !bodyOnlyCollects(p, s.Body.List, locals, collected) {
				return false
			}
			if s.Else != nil {
				var elseStmts []ast.Stmt
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseStmts = e.List
				case *ast.IfStmt:
					elseStmts = []ast.Stmt{e}
				}
				if !bodyOnlyCollects(p, elseStmts, locals, collected) {
					return false
				}
			}
		case *ast.ExprStmt, *ast.BranchStmt:
			// Pure expression statements can't write; continue/break
			// are flow control.
		default:
			return false
		}
	}
	return true
}

// assignOnlyCollects accepts writes to loop-locals (including their
// fields) and the single collecting append.
func assignOnlyCollects(p *Pass, s *ast.AssignStmt, locals map[types.Object]bool, collected *types.Object) bool {
	// x := … inside the body declares more locals.
	if s.Tok.String() == ":=" {
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				locals[p.TypesInfo.Defs[id]] = true
			}
		}
		return true
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	// Writes that stay inside the loop iteration: x = …, x.f = …,
	// x[i] = … for loop-local x.
	if root := rootObject(p, s.Lhs[0]); root != nil && locals[root] {
		return true
	}
	// The collecting append: X = append(X, …) for one outer X.
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.TypesInfo.Uses[lhs]
	if obj == nil {
		obj = p.TypesInfo.Defs[lhs]
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || p.TypesInfo.Uses[arg0] != obj || obj == nil {
		return false
	}
	if *collected != nil && *collected != obj {
		return false
	}
	*collected = obj
	return true
}

// rootObject resolves the base identifier of an lvalue chain
// (x, x.f, x[i], *x …).
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := p.TypesInfo.Uses[v]; o != nil {
				return o
			}
			return p.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortCallNames are the sort/slices functions that order their first
// argument in place.
var sortCallNames = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Stable": true,
}

// functionSorts reports whether fd contains a sort.* or slices.Sort*
// call with the collected slice as first argument.
func functionSorts(p *Pass, fd *ast.FuncDecl, slice types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if !sortCallNames[sel.Sel.Name] && !strings.HasPrefix(sel.Sel.Name, "Sort") {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && p.TypesInfo.Uses[arg] == slice {
			found = true
		}
		return !found
	})
	return found
}
