package lint

import (
	"go/ast"
)

// RawRand flags nondeterministic randomness in non-test code: calls to
// math/rand's global top-level functions (which share a process-global,
// auto-seeded source), any use of math/rand/v2 (whose global functions
// cannot be seeded at all), and rand.NewSource/NewPCG seeds derived
// from the wall clock. Deterministic replay requires every random
// stream to be an explicitly seeded rand.New(rand.NewSource(seed))
// local generator, like serve/loadgen.go's per-tenant streams.
var RawRand = &Analyzer{
	Name: "rawrand",
	Doc: "flags global math/rand top-level functions and wall-clock-seeded " +
		"sources; randomness must come from explicitly seeded local generators",
	Run: runRawRand,
}

// randGlobalFuncs are math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) are
// fine when their seed is deterministic.
var randGlobalFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "NormFloat64": true, "ExpFloat64": true, "Read": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint64N": true, "Uint32N": true,
}

func runRawRand(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			isV1 := isPkgIdent(p, sel.X, "math/rand")
			isV2 := isPkgIdent(p, sel.X, "math/rand/v2")
			if !isV1 && !isV2 {
				return true
			}
			switch {
			case randGlobalFuncs[sel.Sel.Name]:
				p.Reportf(sel.Pos(),
					"global math/rand source via rand.%s; use an explicitly seeded rand.New(rand.NewSource(seed))",
					sel.Sel.Name)
			case sel.Sel.Name == "NewSource" || sel.Sel.Name == "NewPCG" || sel.Sel.Name == "NewChaCha8":
				if call := enclosingCall(sel, f); call != nil && seedUsesWallClock(p, call) {
					p.Reportf(sel.Pos(),
						"rand.%s seeded from the wall clock; derive the seed from configuration so runs replay",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// enclosingCall returns the CallExpr whose Fun is sel, if any.
func enclosingCall(sel *ast.SelectorExpr, f *ast.File) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
			found = call
			return false
		}
		return true
	})
	return found
}

// seedUsesWallClock reports whether any argument of call contains a
// wall-clock read (time.Now and friends).
func seedUsesWallClock(p *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || found {
				return !found
			}
			if wallTimeFuncs[sel.Sel.Name] && isPkgIdent(p, sel.X, "time") {
				found = true
			}
			return !found
		})
	}
	return found
}
