// Package lint implements detlint, the static half of this repo's
// determinism argument. The runtime half is the byte-compare suite —
// determinism tests that replay a trace twice and diff summaries,
// metrics and traces to the byte — but a byte-compare only covers the
// paths the demos exercise. detlint encodes the invariants themselves
// as go/analysis-style rules and checks every package on every build:
//
//   - maprange: no `for … range` over a map in an export/summarize/
//     CSV/trace path unless the loop is the sorted-collect idiom
//     (append keys to a slice, sort it in the same function). Map
//     iteration order is randomized per run; an unsorted walk in a
//     rendering path is the classic byte-determinism killer.
//
//   - walltime: no time.Now/Since/Sleep/After/Tick outside annotated
//     sites. The serving stack runs on the virtual tick clock; wall
//     time is reserved for solver CPU-spend deadlines and the
//     explicitly wall-clock benchmark legs.
//
//   - rawrand: no global math/rand top-level functions (process-global
//     auto-seeded source), no math/rand/v2 globals (unseedable), no
//     wall-clock-seeded rand.NewSource. Random streams are local
//     generators seeded from configuration, like serve/loadgen.go's
//     per-tenant rand.New(rand.NewSource(seed ^ hash(tenant))).
//
//   - baregoroutine: no `go` statement outside the blessed barrier/
//     pool primitives (portfolio engine barrier, ProbeAll solve pool,
//     beam scorer, shard stepper), whose merge points are pinned to
//     the virtual clock.
//
// # Suppressions
//
// Every intentional exception is annotated in the source:
//
//	//detlint:allow <rule> <reason…>
//
// on the flagged line or the line directly above. The reason is
// mandatory — a reason-less or unknown-rule directive is itself a
// finding (rule "allow") — so `git grep detlint:allow` enumerates the
// complete, explained exception surface of the tree.
//
// # Running
//
// cmd/detlint compiles the suite into a multichecker:
//
//	go run ./cmd/detlint ./...            # standalone, exit 1 on findings
//	go vet -vettool=$(which detlint) ./...  # as a vet tool
//
// The framework is a self-contained, stdlib-only re-implementation of
// the narrow golang.org/x/tools go/analysis surface the suite needs
// (Analyzer, Pass, diagnostics, an analysistest-style fixture harness
// in lint/linttest), so the module keeps zero dependencies. Packages
// are resolved with `go list -json` and type-checked from source via
// go/importer's "source" compiler — no export data or build cache
// required.
package lint
