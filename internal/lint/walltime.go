package lint

import (
	"go/ast"
	"go/types"
)

// WallTime flags wall-clock reads and sleeps in non-test code. The
// entire serving stack — serve, fleet, control, shard — runs on the
// virtual tick clock so that traces, summaries and metrics replay
// byte-identically; a stray time.Now() or time.Sleep() silently couples
// results to the host scheduler. The intentional wall-clock sites
// (solver wall deadlines that cap real CPU spend, the shard-compare
// wall benchmark) carry //detlint:allow walltime annotations explaining
// why they never feed deterministic output.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "flags time.Now/Since/Sleep and friends outside annotated wall-bench " +
		"and solver-deadline sites, protecting the virtual-clock discipline",
	Run: runWallTime,
}

// wallTimeFuncs are the package time functions that observe or depend
// on the wall clock. Pure constructors/formatters (time.Duration,
// time.Unix, ParseDuration) are fine.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

func runWallTime(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !wallTimeFuncs[sel.Sel.Name] {
				return true
			}
			if !isPkgIdent(p, sel.X, "time") {
				return true
			}
			p.Reportf(sel.Pos(),
				"wall-clock call time.%s outside the virtual tick clock (annotate //detlint:allow walltime <reason> if intentional)",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}

// isPkgIdent reports whether e is an identifier naming the import of
// pkgPath.
func isPkgIdent(p *Pass, e ast.Expr, pkgPath string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
