// //detlint:allow handling: every intentional exception to a rule is
// annotated in the source, carries a reason, and is auditable with
// `git grep detlint:allow`.

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix starts a suppression comment:
//
//	//detlint:allow <rule> <reason...>
//
// placed either on the flagged line or on the line directly above it.
// The reason is mandatory — a bare allow is reported as malformed — so
// the annotation doubles as documentation of why the exception is safe.
const allowPrefix = "//detlint:allow"

type suppression struct {
	rule string
	file string
	line int
}

type suppressionSet struct {
	byKey     map[suppression]bool
	malformed []Diagnostic
}

// collectSuppressions scans every comment in the package for allow
// directives. Directives with a missing reason or an unknown rule name
// become "allow" diagnostics instead of suppressions.
func collectSuppressions(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) *suppressionSet {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	s := &suppressionSet{byKey: map[suppression]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, allowPrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					// e.g. //detlint:allowed — not ours.
					continue
				}
				// A trailing //-comment (e.g. linttest's want clauses)
				// is not part of the directive.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					s.malformed = append(s.malformed, Diagnostic{
						Pos:     pos,
						Rule:    "allow",
						Message: "detlint:allow directive without a rule name",
					})
				case !known[fields[0]]:
					s.malformed = append(s.malformed, Diagnostic{
						Pos:     pos,
						Rule:    "allow",
						Message: "detlint:allow names unknown rule " + fields[0],
					})
				case len(fields) < 2:
					s.malformed = append(s.malformed, Diagnostic{
						Pos:     pos,
						Rule:    "allow",
						Message: "detlint:allow " + fields[0] + " is missing its reason",
					})
				default:
					s.byKey[suppression{rule: fields[0], file: pos.Filename, line: pos.Line}] = true
				}
			}
		}
	}
	return s
}

// allows reports whether d is covered by an allow directive on the
// same line or the line directly above.
func (s *suppressionSet) allows(d Diagnostic) bool {
	return s.byKey[suppression{rule: d.Rule, file: d.Pos.Filename, line: d.Pos.Line}] ||
		s.byKey[suppression{rule: d.Rule, file: d.Pos.Filename, line: d.Pos.Line - 1}]
}
