module haxconn

go 1.22
